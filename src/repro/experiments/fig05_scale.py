"""fig05-scale: path-length scaling at hyperscale via sampled-pair estimators.

The classic ``fig05`` sweep answers "does the mean path length stay flat as
the network grows?" with exact all-pairs BFS, which caps it at a few
thousand switches.  This variant re-asks the question at 10k-100k switches
(the EGS/Jupiter operating range the paper argues Jellyfish reaches with
cheaper equipment) using the memory-bounded machinery from
:mod:`repro.graphs.sampling`:

* topologies are built array-natively with the vectorized stub-matching
  constructor (no ``networkx`` graph, no Python adjacency dicts);
* path metrics come from :func:`~repro.graphs.sampling.sampled_path_length_stats`
  -- a seeded source sample streamed through the chunked BFS kernel under
  the scratch budget -- with a recorded confidence interval instead of a
  pretend-exact number.

Each switch count is its own scenario point (derived seed), so the sweep
shards across workers and caches per size like any engine-native grid.
At the ``small`` scale the sample still covers a minority of sources, so
tests exercise the same estimator path the hyperscale runs use.

Under the resource governor (``--memory-mb`` plus the degradation ladder,
see :mod:`repro.resources`) a point that exhausts its budget re-runs one
fidelity rung down; because each point echoes the ``num_sources`` that
*actually* ran (``stats.num_sources``), degraded rows are visibly honest
in the assembled table.
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.graphs.sampling import sampled_path_length_stats
from repro.topologies.ensemble import single_rrg_core

_SCALES = {
    "small": {
        "ports": 12,
        "network_degree": 9,
        "switch_counts": [60, 120, 240],
        "num_sources": 24,
    },
    "paper": {
        "ports": 48,
        "network_degree": 36,
        "switch_counts": [1000, 3200, 10000],
        "num_sources": 128,
    },
    "hyperscale": {
        "ports": 48,
        "network_degree": 36,
        "switch_counts": [10000, 50000, 100000],
        "num_sources": 256,
    },
}

_TARGET = "repro.experiments.fig05_scale:compute_scale_path_point"


def compute_scale_path_point(
    num_switches: int,
    ports: int,
    network_degree: int,
    num_sources: int,
    seed: int = 0,
) -> dict:
    """Scenario target: sampled path metrics for one RRG size.

    The construction and the source sample share ``seed`` but consume
    independent generators, so the estimate is reproducible per point.
    """
    core = single_rrg_core(num_switches, ports, network_degree, seed=seed)
    stats = sampled_path_length_stats(core.csr(), num_sources=num_sources, seed=seed)
    return {
        "num_switches": num_switches,
        "num_servers": num_switches * (ports - network_degree),
        "num_sources": stats.num_sources,
        "sampled_pairs": stats.num_pairs,
        "exact": stats.exact,
        "mean_path_length": stats.mean,
        "ci_low": stats.ci_low,
        "ci_high": stats.ci_high,
        "diameter_lower_bound": stats.diameter_lower_bound,
        "unreachable_pairs": stats.unreachable_pairs,
    }


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    return [
        ScenarioSpec.grid(
            _TARGET,
            name=f"fig05-scale-{count}",
            seed=seed,
            seed_strategy="derived",
            num_switches=count,
            ports=config["ports"],
            network_degree=config["network_degree"],
            num_sources=config["num_sources"],
        )
        for count in config["switch_counts"]
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    result = ExperimentResult(
        experiment_id="fig05-scale",
        title=(
            f"Sampled path length vs network size (k={config['ports']}, "
            f"r={config['network_degree']}, "
            f"{config['num_sources']}-source estimator)"
        ),
        columns=[
            "num_switches",
            "num_servers",
            "sources",
            "mean_path_length",
            "ci_low",
            "ci_high",
            "diameter_lb",
            "exact",
        ],
        notes="mean over sampled ordered switch pairs with a 95% CI; "
        "diameter_lb is the eccentricity max over sampled sources "
        "(a lower bound unless exact)",
    )
    for value in values:
        result.add_row(
            value["num_switches"],
            value["num_servers"],
            value["num_sources"],
            value["mean_path_length"],
            value["ci_low"],
            value["ci_high"],
            value["diameter_lower_bound"],
            value["exact"],
        )
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    """Sampled path-length scaling curve (one row per switch count)."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
