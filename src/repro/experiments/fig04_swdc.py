"""Fig 4: Jellyfish vs Small-World Datacenter (SWDC) variants.

Degree-6 topologies with switches holding 2 servers each (the paper first
tries 1 server per switch, finds every variant saturates, and oversubscribes
to 2 servers to expose the capacity differences).  Jellyfish's throughput is
~119% of the best SWDC variant (the ring).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.flow.throughput import normalized_throughput
from repro.topologies.jellyfish import JellyfishTopology
from repro.topologies.swdc import HEX_TORUS_3D, RING, TORUS_2D, SmallWorldTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

_SCALES = {
    # Lattices constrain the node counts: the 2D torus needs a square count,
    # the hex torus needs 2 * s^2.
    "small": {"square_nodes": 100, "hex_nodes": 98, "trials": 2},
    "paper": {"square_nodes": 484, "hex_nodes": 450, "trials": 10},
}

_DEGREE = 6
_SERVERS_PER_SWITCH = 2


def _throughput(topology, trials, rng) -> float:
    values = []
    for _ in range(trials):
        traffic = random_permutation_traffic(topology, rng=rng)
        values.append(
            normalized_throughput(topology, traffic, engine="path", k=8).normalized
        )
    return mean(values)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    square_nodes = config["square_nodes"]
    hex_nodes = config["hex_nodes"]
    trials = config["trials"]

    topologies = {
        "jellyfish": JellyfishTopology.build(
            square_nodes,
            _DEGREE + _SERVERS_PER_SWITCH,
            _DEGREE,
            rng=rng,
            servers_per_switch=_SERVERS_PER_SWITCH,
        ),
        "swdc-ring": SmallWorldTopology.build(
            square_nodes, RING, degree=_DEGREE,
            servers_per_switch=_SERVERS_PER_SWITCH, rng=rng,
        ),
        "swdc-2d-torus": SmallWorldTopology.build(
            square_nodes, TORUS_2D, degree=_DEGREE,
            servers_per_switch=_SERVERS_PER_SWITCH, rng=rng,
        ),
        "swdc-3d-hex-torus": SmallWorldTopology.build(
            hex_nodes, HEX_TORUS_3D, degree=_DEGREE,
            servers_per_switch=_SERVERS_PER_SWITCH, rng=rng,
        ),
    }

    result = ExperimentResult(
        experiment_id="fig04",
        title="Normalized throughput: Jellyfish vs SWDC variants (degree 6, 2 servers/switch)",
        columns=["topology", "num_switches", "num_servers", "normalized_throughput"],
    )
    for name, topology in topologies.items():
        value = _throughput(topology, trials, rng)
        result.add_row(name, topology.num_switches, topology.num_servers, value)
    return result
