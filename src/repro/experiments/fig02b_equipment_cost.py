"""Fig 2(b): equipment cost (total ports) vs servers at full bisection bandwidth.

For each commodity port count the paper plots how many switch ports must be
purchased to support a given number of servers at full bisection bandwidth.
The fat-tree admits only one design point per port count (k^3/4 servers on
5k^3/4 ports); Jellyfish fills in the whole curve and needs fewer ports for
the same servers, with the advantage growing with the port count.

The Jellyfish curve point is a pure function of ``(ports, num_servers)``, so
the figure is a single scenario grid over both axes; each cell caches and
shards independently through the engine.
"""

from __future__ import annotations

import math
from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.graphs.bisection import bollobas_bisection_lower_bound
from repro.topologies.fattree import fattree_num_servers, fattree_num_switches

_SCALES = {
    "small": {"ports": [24, 32], "server_targets": [1000, 4000, 8000, 16000]},
    "paper": {
        "ports": [24, 32, 48, 64],
        "server_targets": [10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000],
    },
}

_TARGET = "repro.experiments.fig02b_equipment_cost:jellyfish_min_ports_for_full_bisection"


def jellyfish_min_ports_for_full_bisection(ports: int, num_servers: int) -> int:
    """Smallest total port count achieving normalized bisection >= 1.

    Searches the number of switches N; each switch hosts ``num_servers / N``
    servers and uses the rest of its ports for the network.  Uses the
    Bollobás bound, as in the paper.
    """
    if ports < 2:
        raise ValueError("ports must be at least 2")
    low, high = max(2, num_servers // (ports - 1)), None
    n = low
    while True:
        servers_per_switch = math.ceil(num_servers / n)
        degree = ports - servers_per_switch
        if degree > 0:
            bound = bollobas_bisection_lower_bound(n, degree)
            if bound >= num_servers / 2.0:
                high = n
                break
        n = max(n + 1, int(n * 1.05))
        if n > 100 * max(1, num_servers):
            raise RuntimeError("failed to find a feasible Jellyfish size")
    # Refine downward: the predicate is monotone in n beyond the first hit.
    low = max(2, num_servers // (ports - 1))
    while low < high:
        middle = (low + high) // 2
        servers_per_switch = math.ceil(num_servers / middle)
        degree = ports - servers_per_switch
        feasible = (
            degree > 0
            and bollobas_bisection_lower_bound(middle, degree) >= num_servers / 2.0
        )
        if feasible:
            high = middle
        else:
            low = middle + 1
    return low * ports


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    return [
        ScenarioSpec.grid(
            _TARGET,
            name="fig02b",
            ports=list(config["ports"]),
            num_servers=list(config["server_targets"]),
        )
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    result = ExperimentResult(
        experiment_id="fig02b",
        title="Equipment cost (total ports) vs servers at full bisection bandwidth",
        columns=[
            "ports_per_switch",
            "servers",
            "jellyfish_total_ports",
            "fattree_servers_design_point",
            "fattree_total_ports",
        ],
    )
    iterator = iter(values)
    for ports in config["ports"]:
        fattree_servers = fattree_num_servers(ports)
        fattree_ports = fattree_num_switches(ports) * ports
        for servers in config["server_targets"]:
            result.add_row(
                ports, servers, next(iterator), fattree_servers, fattree_ports
            )
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
