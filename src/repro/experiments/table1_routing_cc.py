"""Table 1: per-server throughput for routing x congestion-control combinations.

The paper compares a fat-tree against a Jellyfish that hosts ~14% more
servers on the same equipment, under {TCP 1 flow, TCP 8 flows, MPTCP 8
subflows} x {ECMP, 8-shortest-path routing}.  Findings: ECMP wastes
Jellyfish's capacity; with 8-shortest-path routing every congestion control
does at least as well on Jellyfish as on the fat-tree.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.simulation.fluid import (
    MPTCP,
    TCP_EIGHT_FLOWS,
    TCP_ONE_FLOW,
    SimulationConfig,
    simulate_fluid,
)
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

_SCALES = {
    "small": {"k": 6, "jellyfish_server_factor": 1.13, "trials": 2},
    "paper": {"k": 14, "jellyfish_server_factor": 1.137, "trials": 5},
}

_CONTROLS = [
    ("TCP 1 flow", TCP_ONE_FLOW),
    ("TCP 8 flows", TCP_EIGHT_FLOWS),
    ("MPTCP 8 subflows", MPTCP),
]


def _average(topology, routing, control, trials, rng) -> float:
    config = SimulationConfig(routing=routing, k=8, congestion_control=control)
    values = []
    for _ in range(trials):
        traffic = random_permutation_traffic(topology, rng=rng)
        values.append(simulate_fluid(topology, traffic, config, rng=rng).average_throughput)
    return mean(values)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    k = config["k"]
    trials = config["trials"]

    fattree = FatTreeTopology.build(k)
    jellyfish_servers = int(round(fattree.num_servers * config["jellyfish_server_factor"]))
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=k,
        num_servers=jellyfish_servers,
        rng=rng,
    )

    result = ExperimentResult(
        experiment_id="table1",
        title=(
            f"Average per-server throughput (fraction of NIC rate): fat-tree "
            f"({fattree.num_servers} servers) vs Jellyfish ({jellyfish.num_servers} servers)"
        ),
        columns=[
            "congestion_control",
            "fattree_ecmp",
            "jellyfish_ecmp",
            "jellyfish_8_shortest_paths",
        ],
    )
    for label, control in _CONTROLS:
        result.add_row(
            label,
            _average(fattree, "ecmp", control, trials, rng),
            _average(jellyfish, "ecmp", control, trials, rng),
            _average(jellyfish, "ksp", control, trials, rng),
        )
    return result
