"""Experiment runners: one module per table/figure in the paper's evaluation.

Every module exposes a ``run(scale=..., seed=...)`` function that returns a
:class:`repro.experiments.common.ExperimentResult` whose rows mirror the
series the paper plots.  ``scale`` is ``"small"`` (fast, used by the
benchmark suite and CI) or ``"paper"`` (closer to the paper's sizes; slower).
"""

from repro.experiments.common import ExperimentResult, format_table, list_experiments, run_experiment

__all__ = ["ExperimentResult", "format_table", "list_experiments", "run_experiment"]
