"""Fig 12 dynamics variant: AIMD convergence across runs, Jellyfish vs fat-tree.

Fig 12 shows the *steady-state* throughput envelope (min/mean/max over
independently drawn topologies and traffic) computed by the fluid model.
This sweep cross-validates that stability story with the round-based AIMD
engine: each point runs the dynamic simulator on a fresh topology + traffic
draw and reports, alongside the same throughput envelope, how many rounds
the coupled AIMD controller needs before the per-connection goodput settles
(:func:`repro.simulation.aimd.measure_convergence_round`).  Every
(size, topology, instance) cell is its own scenario point, so the grid
shards across workers and caches per instance; path routing within one
topology is served by the shared path table.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.simulation.aimd import AimdConfig, simulate_aimd
from repro.simulation.fluid import MPTCP
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

#: ``packets_per_round`` sets the model's time constant (windows grow by
#: about one packet per round, so equilibrium arrives after O(packets)
#: rounds); 20 keeps convergence comfortably inside the simulated horizon.
#: The convergence window/tolerance smooth over the MPTCP halving sawtooth.
_SCALES = {
    "small": {
        "port_counts": [4, 6],
        "runs": 3,
        "rounds": 150,
        "warmup_rounds": 30,
        "packets_per_round": 20,
        "jellyfish_server_factor": 1.1,
    },
    "paper": {
        "port_counts": [8, 10, 12, 14],
        "runs": 10,
        "rounds": 400,
        "warmup_rounds": 60,
        "packets_per_round": 20,
        "jellyfish_server_factor": 1.25,
    },
}

_TARGET = "repro.experiments.fig12_dynamics:aimd_dynamics_point"


def dynamics_topology_case(topology: str, ports: int, server_factor: float, rng):
    """The dynamics experiments' shared topology setup.

    ``"fat-tree"`` pairs the k-port fat-tree with ECMP routing;
    ``"jellyfish"`` pairs the equipment-matched random graph (hosting
    ``server_factor`` times the fat-tree's servers) with k-shortest-path
    routing.  Returns ``(topology, routing)``; shared by fig12-dynamics and
    fig13-dynamics so the equipment-matching convention cannot diverge.
    """
    fattree = FatTreeTopology.build(ports)
    if topology == "fat-tree":
        return fattree, "ecmp"
    if topology == "jellyfish":
        built = JellyfishTopology.from_equipment(
            num_switches=fattree.num_switches,
            ports_per_switch=ports,
            num_servers=int(round(fattree.num_servers * server_factor)),
            rng=rng,
        )
        return built, "ksp"
    raise ValueError(f"unknown topology {topology!r}")


def aimd_dynamics_point(
    topology: str,
    ports: int,
    server_factor: float,
    rounds: int,
    warmup_rounds: int,
    packets_per_round: int = 20,
    convergence_tolerance: float = 0.1,
    convergence_window: int = 16,
    instance: int = 0,
    seed: Optional[int] = None,
) -> dict:
    """One AIMD run on a fresh topology + traffic draw (scenario target).

    ``topology`` is ``"fat-tree"`` (ECMP routing over the k-port fat-tree)
    or ``"jellyfish"`` (k-shortest-path routing over the equipment-matched
    random graph, hosting ``server_factor`` times the fat-tree's servers);
    both run MPTCP with 8 subflows, the paper's strongest configuration.
    ``instance`` only differentiates scenario points (the seed is derived
    from it by the spec machinery).
    """
    rng = ensure_rng(seed)
    built, routing = dynamics_topology_case(topology, ports, server_factor, rng)
    config = AimdConfig(
        routing=routing,
        k=8,
        congestion_control=MPTCP,
        rounds=rounds,
        warmup_rounds=warmup_rounds,
        packets_per_round=packets_per_round,
        convergence_tolerance=convergence_tolerance,
        convergence_window=convergence_window,
    )
    traffic = random_permutation_traffic(built, rng=rng)
    outcome = simulate_aimd(built, traffic, config, rng=rng)
    return {
        "num_servers": built.num_servers,
        "num_connections": len(outcome.flow_throughputs),
        "average_throughput": outcome.average_throughput,
        "fairness": outcome.fairness,
        "convergence_round": outcome.convergence_round,
    }


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    return [
        ScenarioSpec.grid(
            _TARGET,
            name=f"fig12-dynamics-{ports}",
            seed=seed,
            seed_strategy="derived",
            ports=ports,
            server_factor=config["jellyfish_server_factor"],
            rounds=config["rounds"],
            warmup_rounds=config["warmup_rounds"],
            packets_per_round=config["packets_per_round"],
            topology=["fat-tree", "jellyfish"],
            instance=list(range(config["runs"])),
        )
        for ports in config["port_counts"]
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    runs = config["runs"]
    result = ExperimentResult(
        experiment_id="fig12-dynamics",
        title=(
            "AIMD convergence and throughput stability across runs "
            f"({config['rounds']} rounds, warm-up {config['warmup_rounds']})"
        ),
        columns=[
            "topology",
            "num_servers",
            "min",
            "mean",
            "max",
            "converged_fraction",
            "convergence_round_mean",
        ],
        notes="round-based AIMD engine (MPTCP, 8 subflows); convergence is "
        "the first measured round where smoothed per-connection goodput "
        "settles; compare the envelope against fig12's fluid model",
    )
    iterator = iter(values)
    for _ports in config["port_counts"]:
        for topology in ("fat-tree", "jellyfish"):
            points = [next(iterator) for _ in range(runs)]
            throughputs = [point["average_throughput"] for point in points]
            converged = [
                point["convergence_round"]
                for point in points
                if point["convergence_round"] is not None
            ]
            result.add_row(
                topology,
                points[0]["num_servers"],
                min(throughputs),
                mean(throughputs),
                max(throughputs),
                len(converged) / len(points),
                mean(converged) if converged else float("nan"),
            )
    return result


def run(
    scale: str = "small", seed: int = 0, runner: Optional[SweepRunner] = None
) -> ExperimentResult:
    """AIMD convergence/stability envelope (dynamic fig12 counterpart)."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
