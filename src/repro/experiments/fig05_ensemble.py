"""Fig 5 ensemble variant: path-length scaling with per-size error bars.

Fig 5 plots one sampled topology per size; the paper's claim ("mean path
length stays below ~2.7, diameter at most 4") is really a statement about
almost every random regular graph.  This sweep samples ``num_instances``
independent RRGs per size -- each instance is its own scenario point, so
the grid shards across workers and caches per instance -- and reports
mean/std across the ensemble.
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.topologies.ensemble import _mean_std

_SCALES = {
    "small": {
        "ports": 12,
        "network_degree": 9,
        "switch_counts": [20, 40],
        "num_instances": 5,
        "method": "stubs",
    },
    "paper": {
        "ports": 48,
        "network_degree": 36,
        "switch_counts": [100, 400, 800, 1600, 3200],
        "num_instances": 20,
        "method": "stubs",
    },
}

_TARGET = "repro.topologies.ensemble:ensemble_instance_metrics"


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    return [
        ScenarioSpec.grid(
            _TARGET,
            name=f"fig05-ens-{count}",
            seed=seed,
            seed_strategy="derived",
            num_switches=count,
            ports=config["ports"],
            network_degree=config["network_degree"],
            method=config["method"],
            instance=list(range(config["num_instances"])),
        )
        for count in config["switch_counts"]
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    servers_per_switch = config["ports"] - config["network_degree"]
    result = ExperimentResult(
        experiment_id="fig05-ens",
        title=(
            f"Path length vs servers over {config['num_instances']}-instance "
            f"ensembles (k={config['ports']}, r={config['network_degree']}, "
            f"method={config['method']})"
        ),
        columns=[
            "num_servers",
            "instances",
            "connected_fraction",
            "mean_path_length_mean",
            "mean_path_length_std",
            "diameter_mean",
            "diameter_max",
        ],
        notes="statistics over connected instances; construction is the "
        "vectorized stub-matching RRG with splice repair",
    )
    iterator = iter(values)
    for count in config["switch_counts"]:
        metrics = [next(iterator) for _ in range(config["num_instances"])]
        connected = [m for m in metrics if m["connected"]]
        paths = [m["mean_path_length"] for m in connected if "mean_path_length" in m]
        diameters = [float(m["diameter"]) for m in connected if "diameter" in m]
        path_mean, path_std = _mean_std(paths)
        diameter_mean, _ = _mean_std(diameters)
        result.add_row(
            count * servers_per_switch,
            len(metrics),
            len(connected) / len(metrics) if metrics else float("nan"),
            path_mean,
            path_std,
            diameter_mean,
            max(diameters) if diameters else float("nan"),
        )
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    """Ensemble path-length scaling (mean/std per size)."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
