"""fig02a-scale: sampled bisection and throughput bounds at hyperscale.

Fig 2(a) plots the analytic Bollobás bisection lower bound; its ensemble
variant measures Kernighan--Lin cuts on concrete instances, which is
hopeless beyond a few thousand switches.  This sweep keeps the figure's
question honest at 10k-100k switches with estimators that stay O(E) per
trial:

* :func:`~repro.graphs.sampling.sampled_bisection_stats` -- random
  balanced partitions give an *upper* bound on the bisection width, with
  a CI around the mean cut and the analytic expected cut for calibration;
* the Bollobás *lower* bound brackets the truth from below, so the row
  reports a certified [lower, upper] interval per size;
* :func:`~repro.graphs.sampling.sampled_throughput_bound` converts the
  sampled mean path length into the link-capacity throughput ceiling of
  Jyothi et al. (``links / (flows * mean_path)``), per server.

Cuts are normalized by one partition's server bandwidth (``servers / 2``),
the same normalization the fig02a family uses.

Both estimators honor the active execution profile (degradation ladder,
:mod:`repro.resources`): a resource-exhausted point re-runs with fewer
sources/trials one rung down, and the echoed ``trials``/``num_sources``
in each row record what actually ran.
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.graphs.bisection import bollobas_bisection_lower_bound
from repro.graphs.sampling import (
    sampled_bisection_stats,
    sampled_path_length_stats,
    sampled_throughput_bound,
)
from repro.topologies.ensemble import single_rrg_core

_SCALES = {
    "small": {
        "ports": 8,
        "network_degree": 6,
        "switch_counts": [40, 80],
        "trials": 8,
        "num_sources": 16,
    },
    "paper": {
        "ports": 48,
        "network_degree": 36,
        "switch_counts": [1000, 10000],
        "trials": 9,
        "num_sources": 64,
    },
    "hyperscale": {
        "ports": 48,
        "network_degree": 36,
        "switch_counts": [10000, 50000, 100000],
        "trials": 9,
        "num_sources": 64,
    },
}

_TARGET = "repro.experiments.fig02a_scale:compute_scale_bisection_point"


def compute_scale_bisection_point(
    num_switches: int,
    ports: int,
    network_degree: int,
    trials: int,
    num_sources: int,
    seed: int = 0,
) -> dict:
    """Scenario target: sampled cut + throughput bounds for one RRG size."""
    core = single_rrg_core(num_switches, ports, network_degree, seed=seed)
    csr = core.csr()
    servers = num_switches * (ports - network_degree)
    half_bandwidth = servers / 2.0 if servers else 1.0

    cuts = sampled_bisection_stats(csr, trials=trials, seed=seed)
    paths = sampled_path_length_stats(csr, num_sources=num_sources, seed=seed)
    throughput, thr_low, thr_high = sampled_throughput_bound(csr, servers, paths)
    return {
        "num_switches": num_switches,
        "num_servers": servers,
        "network_degree": network_degree,
        "trials": cuts.trials,
        "bollobas_normalized": (
            bollobas_bisection_lower_bound(num_switches, network_degree)
            / half_bandwidth
        ),
        "min_cut_normalized": cuts.min_cut / half_bandwidth,
        "mean_cut_normalized": cuts.mean_cut / half_bandwidth,
        "cut_ci_low": cuts.ci_low / half_bandwidth,
        "cut_ci_high": cuts.ci_high / half_bandwidth,
        "expected_cut_normalized": cuts.expected_cut / half_bandwidth,
        "throughput_bound": throughput,
        "throughput_ci_low": thr_low,
        "throughput_ci_high": thr_high,
        "mean_path_length": paths.mean,
    }


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    return [
        ScenarioSpec.grid(
            _TARGET,
            name=f"fig02a-scale-{count}",
            seed=seed,
            seed_strategy="derived",
            num_switches=count,
            ports=config["ports"],
            network_degree=config["network_degree"],
            trials=config["trials"],
            num_sources=config["num_sources"],
        )
        for count in config["switch_counts"]
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    result = ExperimentResult(
        experiment_id="fig02a-scale",
        title=(
            f"Sampled bisection and throughput bounds vs size "
            f"(k={config['ports']}, r={config['network_degree']}, "
            f"{config['trials']} random balanced cuts)"
        ),
        columns=[
            "num_switches",
            "num_servers",
            "bollobas_lower",
            "min_cut_upper",
            "mean_cut",
            "cut_ci_low",
            "cut_ci_high",
            "expected_cut",
            "throughput_bound",
        ],
        notes="cuts normalized by servers/2; bollobas_lower <= true bisection "
        "<= min_cut_upper; throughput_bound = per-server ceiling from the "
        "sampled mean path length",
    )
    for value in values:
        result.add_row(
            value["num_switches"],
            value["num_servers"],
            value["bollobas_normalized"],
            value["min_cut_normalized"],
            value["mean_cut_normalized"],
            value["cut_ci_low"],
            value["cut_ci_high"],
            value["expected_cut_normalized"],
            value["throughput_bound"],
        )
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    """Sampled bisection/throughput bound curves (one row per switch count)."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
