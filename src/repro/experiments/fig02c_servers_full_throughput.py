"""Fig 2(c): servers supported at full throughput vs equipment cost (optimal routing).

For each switch port count, the fat-tree fixes the equipment pool (5k^2/4
switches of k ports) and hosts k^3/4 servers at full capacity.  Using the
same equipment, a binary search finds the largest number of servers a
Jellyfish supports at full capacity under random-permutation traffic with
optimal (LP) routing.  The paper reports up to 27% more servers at the
largest size it could solve with CPLEX.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.flow.throughput import max_servers_at_full_throughput
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.utils.rng import ensure_rng

_SCALES = {
    "small": {"port_counts": [4, 6], "num_matrices": 2, "k_paths": 8},
    "paper": {"port_counts": [6, 8, 10, 12, 14], "num_matrices": 3, "k_paths": 12},
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)

    result = ExperimentResult(
        experiment_id="fig02c",
        title="Servers at full throughput vs equipment cost (optimal routing)",
        columns=[
            "ports_per_switch",
            "equipment_total_ports",
            "fattree_servers",
            "jellyfish_servers",
            "jellyfish_advantage",
        ],
        notes="advantage = jellyfish_servers / fattree_servers",
    )
    for ports in config["port_counts"]:
        fattree = FatTreeTopology.build(ports)
        num_switches = fattree.num_switches
        fattree_servers = fattree.num_servers

        def factory(num_servers: int, _ports=ports, _switches=num_switches):
            return JellyfishTopology.from_equipment(
                num_switches=_switches,
                ports_per_switch=_ports,
                num_servers=num_servers,
                rng=rng,
            )

        # Keep at least 3 network ports per switch so the random graph stays
        # connected with high probability (an r-regular random graph needs
        # r >= 3 to be connected almost surely).
        upper = num_switches * max(1, ports - 3)
        best = max_servers_at_full_throughput(
            factory,
            lower=max(2, fattree_servers // 2),
            upper=upper,
            num_matrices=config["num_matrices"],
            engine="path",
            k=config["k_paths"],
            rng=rng,
        )
        result.add_row(
            ports,
            fattree.total_ports,
            fattree_servers,
            best,
            best / fattree_servers,
        )
    return result
