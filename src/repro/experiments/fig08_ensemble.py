"""Fig 8 ensemble variant: failure resilience with per-fraction error bars.

Fig 8 fails one sampled Jellyfish per fraction; this sweep samples
``num_instances`` equipment-matched instances per failure fraction through
the vectorized mask-based failure path
(:func:`repro.failures.injection.fail_random_links_core`) and reports the
mean/std/min of normalized throughput -- the "a failed random graph is just
another random graph" claim as an ensemble statement.
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.topologies.ensemble import _mean_std
from repro.topologies.fattree import FatTreeTopology

_SCALES = {
    "small": {
        "k": 4,
        "jellyfish_server_factor": 1.15,
        "fractions": [0.0, 0.1, 0.2],
        "num_instances": 4,
        "lp_k": 8,
    },
    "paper": {
        "k": 12,
        "jellyfish_server_factor": 1.26,
        "fractions": [0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
        "num_instances": 10,
        "lp_k": 8,
    },
}

_TARGET = "repro.topologies.ensemble:ensemble_failure_point"


def _equipment(config) -> tuple:
    fattree = FatTreeTopology.build(config["k"])
    num_servers = int(
        round(fattree.num_servers * config["jellyfish_server_factor"])
    )
    return fattree.num_switches, config["k"], num_servers


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    num_switches, ports, num_servers = _equipment(config)
    return [
        ScenarioSpec.grid(
            _TARGET,
            name=f"fig08-ens-{fraction}",
            seed=seed,
            seed_strategy="derived",
            num_switches=num_switches,
            ports=ports,
            num_servers=num_servers,
            fraction=fraction,
            k=config["lp_k"],
            instance=list(range(config["num_instances"])),
        )
        for fraction in config["fractions"]
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    num_switches, ports, num_servers = _equipment(config)
    result = ExperimentResult(
        experiment_id="fig08-ens",
        title=(
            f"Throughput under random link failures over "
            f"{config['num_instances']}-instance ensembles "
            f"(jellyfish {num_servers} servers on {num_switches}x{ports}-port "
            "switches, mask-based failures)"
        ),
        columns=[
            "fraction_links_failed",
            "instances",
            "throughput_mean",
            "throughput_std",
            "throughput_min",
            "connected_fraction",
        ],
    )
    iterator = iter(values)
    for fraction in config["fractions"]:
        points = [next(iterator) for _ in range(config["num_instances"])]
        throughputs = [p["throughput"] for p in points]
        mean, std = _mean_std(throughputs)
        result.add_row(
            fraction,
            len(points),
            mean,
            std,
            min(throughputs),
            sum(1 for p in points if p["connected"]) / len(points),
        )
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    """Ensemble failure-resilience curve (mean/std per fraction)."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
