"""Fig 1(c): path-length distribution, Jellyfish vs same-equipment fat-tree.

The paper plots the fraction of server pairs reachable within each hop count
for a 686-server Jellyfish and the same-equipment fat-tree (k = 14).  The
headline observation: >99.5% of Jellyfish server pairs are within fewer than
6 hops versus only 7.5% for the fat-tree.

The whole comparison is one scenario point (both CDFs share one rng stream),
declared through the scenario engine so ``repro sweep run fig01`` caches and
re-serves it by content hash.  The CDFs themselves ride the memoized
all-pairs BFS in :mod:`repro.graphs.properties`.
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.utils.rng import ensure_rng

_SCALES = {"small": 8, "paper": 14}

_TARGET = "repro.experiments.fig01_path_length:compute_cdfs"


def compute_cdfs(k: int, seed: int = 0) -> dict:
    """Scenario target: server path-length CDFs for both topologies.

    CDFs are returned as ``[hop, fraction]`` pair lists so the value is
    JSON-stable (cache round-trips bit-identically).
    """
    rng = ensure_rng(seed)
    fattree = FatTreeTopology.build(k)
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=k,
        num_servers=fattree.num_servers,
        rng=rng,
    )
    return {
        "k": k,
        "num_servers": fattree.num_servers,
        "fattree": sorted(fattree.server_path_length_cdf().items()),
        "jellyfish": sorted(jellyfish.server_path_length_cdf().items()),
    }


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    return [ScenarioSpec.grid(_TARGET, name="fig01", seed=seed, k=_SCALES[scale])]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    value = values[0]
    fat_cdf = {int(hop): fraction for hop, fraction in value["fattree"]}
    jelly_cdf = {int(hop): fraction for hop, fraction in value["jellyfish"]}
    hops = sorted(set(fat_cdf) | set(jelly_cdf))

    result = ExperimentResult(
        experiment_id="fig01",
        title=(
            f"Path length CDF between servers: Jellyfish vs fat-tree "
            f"(k={value['k']}, {value['num_servers']} servers each)"
        ),
        columns=["path_length", "jellyfish_fraction", "fattree_fraction"],
        notes="cumulative fraction of server pairs reachable within the hop count",
    )

    def cumulative(cdf, hop):
        best = 0.0
        for length, fraction in cdf.items():
            if length <= hop:
                best = max(best, fraction)
        return best

    for hop in hops:
        result.add_row(hop, cumulative(jelly_cdf, hop), cumulative(fat_cdf, hop))
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    """Path-length CDFs for a fat-tree and a same-equipment Jellyfish."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
