"""Fig 1(c): path-length distribution, Jellyfish vs same-equipment fat-tree.

The paper plots the fraction of server pairs reachable within each hop count
for a 686-server Jellyfish and the same-equipment fat-tree (k = 14).  The
headline observation: >99.5% of Jellyfish server pairs are within fewer than
6 hops versus only 7.5% for the fat-tree.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.utils.rng import ensure_rng

_SCALES = {"small": 8, "paper": 14}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Path-length CDFs for a fat-tree and a same-equipment Jellyfish."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    k = _SCALES[scale]
    rng = ensure_rng(seed)

    fattree = FatTreeTopology.build(k)
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=k,
        num_servers=fattree.num_servers,
        rng=rng,
    )

    fat_cdf = fattree.server_path_length_cdf()
    jelly_cdf = jellyfish.server_path_length_cdf()
    hops = sorted(set(fat_cdf) | set(jelly_cdf))

    result = ExperimentResult(
        experiment_id="fig01",
        title=(
            f"Path length CDF between servers: Jellyfish vs fat-tree "
            f"(k={k}, {fattree.num_servers} servers each)"
        ),
        columns=["path_length", "jellyfish_fraction", "fattree_fraction"],
        notes="cumulative fraction of server pairs reachable within the hop count",
    )

    def cumulative(cdf, hop):
        best = 0.0
        for length, fraction in cdf.items():
            if length <= hop:
                best = max(best, fraction)
        return best

    for hop in hops:
        result.add_row(hop, cumulative(jelly_cdf, hop), cumulative(fat_cdf, hop))
    return result
