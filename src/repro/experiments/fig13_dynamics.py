"""Fig 13 dynamics variant: AIMD fairness against the fluid allocation.

Fig 13 reports Jain's fairness index of the *fluid* (steady-state max-min)
allocation under k-shortest-path routing + MPTCP.  This sweep runs the
round-based AIMD engine on the **same topology and traffic matrix** and
compares the fairness and average throughput the dynamic controller
actually reaches against the fluid equilibrium it is supposed to converge
to -- the repo's stand-in for the paper's packet-simulator cross-check.
Each (topology, instance) cell is an independent scenario point; within a
point the two simulators share the topology's path table via the shared
path-set cache.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.experiments.fig12_dynamics import dynamics_topology_case
from repro.simulation.aimd import AimdConfig, simulate_aimd
from repro.simulation.fluid import MPTCP, SimulationConfig, simulate_fluid
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

#: ``packets_per_round`` = 20 keeps the AIMD time constant well inside the
#: simulated horizon (see fig12_dynamics); warm-up discards the initial
#: window growth so the measured average reflects the settled allocation.
_SCALES = {
    "small": {
        "ports": 6,
        "runs": 2,
        "rounds": 150,
        "warmup_rounds": 30,
        "packets_per_round": 20,
        "jellyfish_server_factor": 1.13,
    },
    "paper": {
        "ports": 14,
        "runs": 3,
        "rounds": 400,
        "warmup_rounds": 60,
        "packets_per_round": 20,
        "jellyfish_server_factor": 1.137,
    },
}

_TARGET = "repro.experiments.fig13_dynamics:aimd_vs_fluid_point"


def aimd_vs_fluid_point(
    topology: str,
    ports: int,
    server_factor: float,
    rounds: int,
    warmup_rounds: int,
    packets_per_round: int = 20,
    instance: int = 0,
    seed: Optional[int] = None,
) -> dict:
    """Fluid vs AIMD on one topology + traffic draw (scenario target)."""
    rng = ensure_rng(seed)
    built, routing = dynamics_topology_case(topology, ports, server_factor, rng)
    traffic = random_permutation_traffic(built, rng=rng)
    fluid = simulate_fluid(
        built,
        traffic,
        SimulationConfig(routing=routing, k=8, congestion_control=MPTCP),
        rng=rng,
    )
    aimd = simulate_aimd(
        built,
        traffic,
        AimdConfig(
            routing=routing,
            k=8,
            congestion_control=MPTCP,
            rounds=rounds,
            warmup_rounds=warmup_rounds,
            packets_per_round=packets_per_round,
            convergence_tolerance=0.1,
            convergence_window=16,
        ),
        rng=rng,
    )
    gaps = [
        abs(dynamic - steady)
        for dynamic, steady in zip(aimd.flow_throughputs, fluid.flow_throughputs)
    ]
    return {
        "num_flows": len(aimd.flow_throughputs),
        "aimd_fairness": aimd.fairness,
        "fluid_fairness": fluid.fairness,
        "aimd_throughput": aimd.average_throughput,
        "fluid_throughput": fluid.average_throughput,
        "mean_abs_gap": mean(gaps) if gaps else 0.0,
        "convergence_round": aimd.convergence_round,
    }


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    return [
        ScenarioSpec.grid(
            _TARGET,
            name="fig13-dynamics",
            seed=seed,
            seed_strategy="derived",
            ports=config["ports"],
            server_factor=config["jellyfish_server_factor"],
            rounds=config["rounds"],
            warmup_rounds=config["warmup_rounds"],
            packets_per_round=config["packets_per_round"],
            topology=["fat-tree", "jellyfish"],
            instance=list(range(config["runs"])),
        )
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    runs = config["runs"]
    result = ExperimentResult(
        experiment_id="fig13-dynamics",
        title=(
            "AIMD fairness vs the fluid allocation (ksp/ecmp + MPTCP, "
            f"{config['rounds']} rounds)"
        ),
        columns=[
            "topology",
            "num_flows",
            "aimd_fairness",
            "fluid_fairness",
            "aimd_throughput",
            "fluid_throughput",
            "mean_abs_gap",
        ],
        notes="each run compares both simulators on one topology + traffic "
        "draw; mean_abs_gap is the mean absolute per-flow throughput "
        "difference between the AIMD rounds and the fluid equilibrium",
    )
    iterator = iter(values)
    for topology in ("fat-tree", "jellyfish"):
        points = [next(iterator) for _ in range(runs)]
        result.add_row(
            topology,
            points[0]["num_flows"],
            mean(point["aimd_fairness"] for point in points),
            mean(point["fluid_fairness"] for point in points),
            mean(point["aimd_throughput"] for point in points),
            mean(point["fluid_throughput"] for point in points),
            mean(point["mean_abs_gap"] for point in points),
        )
    return result


def run(
    scale: str = "small", seed: int = 0, runner: Optional[SweepRunner] = None
) -> ExperimentResult:
    """AIMD vs fluid fairness comparison (dynamic fig13 counterpart)."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
