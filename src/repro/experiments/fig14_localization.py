"""Fig 14: two-layer (localized) Jellyfish for container data centers.

Restricting a fraction of every switch's random links to stay inside its own
container shortens most cables; the paper shows throughput (normalized to an
unrestricted Jellyfish of identical equipment) degrades by <6% when 60% of
links are localized, which already exceeds the fat-tree's in-pod fraction of
0.5 * (1 + 1/k).
"""

from __future__ import annotations

from repro.cabling.containers import build_localized_jellyfish, local_link_fraction
from repro.experiments.common import ExperimentResult
from repro.flow.throughput import normalized_throughput
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

_SCALES = {
    "small": {
        "sizes": [(4, 8)],          # (containers, switches per container)
        "fractions": [0.0, 0.3, 0.6, 0.9],
        "trials": 2,
    },
    "paper": {
        "sizes": [(4, 10), (5, 15), (6, 20), (7, 28)],
        "fractions": [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        "trials": 5,
    },
}

_PORTS = 10
_NETWORK_DEGREE = 6
_SERVERS_PER_SWITCH = 4  # oversubscribed so localization effects are visible


def _throughput(topology, trials, rng) -> float:
    values = []
    for _ in range(trials):
        traffic = random_permutation_traffic(topology, rng=rng)
        values.append(
            normalized_throughput(topology, traffic, engine="path", k=8).normalized
        )
    return mean(values)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    trials = config["trials"]

    result = ExperimentResult(
        experiment_id="fig14",
        title="Localized (two-layer) Jellyfish throughput vs fraction of in-container links",
        columns=[
            "num_servers",
            "requested_local_fraction",
            "achieved_local_fraction",
            "throughput_normalized_to_unrestricted",
        ],
    )
    for containers, per_container in config["sizes"]:
        num_switches = containers * per_container
        unrestricted = JellyfishTopology.build(
            num_switches,
            _PORTS,
            _NETWORK_DEGREE,
            rng=rng,
            servers_per_switch=_SERVERS_PER_SWITCH,
        )
        baseline = _throughput(unrestricted, trials, rng)
        for fraction in config["fractions"]:
            localized = build_localized_jellyfish(
                num_containers=containers,
                switches_per_container=per_container,
                ports_per_switch=_PORTS,
                network_degree=_NETWORK_DEGREE,
                servers_per_switch=_SERVERS_PER_SWITCH,
                local_fraction=fraction,
                rng=rng,
            )
            value = _throughput(localized, trials, rng)
            normalized = value / baseline if baseline else 0.0
            result.add_row(
                localized.num_servers,
                fraction,
                local_link_fraction(localized),
                normalized,
            )
    return result
