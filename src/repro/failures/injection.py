"""Random link and switch failures.

The paper's Fig 8 fails a random fraction of inter-switch links and measures
the drop in per-server throughput: Jellyfish degrades more gracefully than a
same-equipment fat-tree, and failing 15% of links costs less than 16% of
capacity.  A failed random graph is "just another random graph", so the
degradation is close to proportional.

Two failure interfaces are provided:

* the historical copy-and-remove functions (:func:`fail_random_links`,
  :func:`fail_random_switches`) that operate on a :class:`Topology`;
* vectorized mask-based variants over a
  :class:`~repro.topologies.core.TopologyCore`'s edge arrays
  (:func:`link_failure_mask` / :func:`fail_random_links_core` and the
  switch equivalents), used by the ensemble subsystem where hundreds of
  failed instances are generated without materializing ``networkx``
  graphs.  For the same seed the mask selects exactly the edges the
  copy-and-remove path would have removed (the rng draws depend only on
  the edge count, and core edge order equals ``list(graph.edges)`` order);
  the parity suite in ``tests/test_topology_core.py`` pins this.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

import numpy as np

from repro.failures.degradation import DegradationReport, split_reachable_demands
from repro.flow.throughput import degraded_throughput, normalized_throughput
from repro.topologies.base import Topology
from repro.topologies.core import TopologyCore
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_fraction


def fail_random_links(
    topology: Topology, fraction: float, rng: RngLike = None
) -> Topology:
    """Return a copy of ``topology`` with a random ``fraction`` of links removed.

    Server attachment links are never failed (only the switch interconnect),
    matching the paper's experiment.  If removing the links disconnects a
    switch that hosts servers, the copy is still returned -- the throughput
    evaluation will simply report the resulting capacity loss.
    """
    require_fraction(fraction, "fraction")
    rand = ensure_rng(rng)
    failed = topology.copy()
    links: List[Tuple[Hashable, Hashable]] = list(failed.graph.edges)
    num_to_fail = int(round(fraction * len(links)))
    if num_to_fail == 0:
        return failed
    to_fail = rand.sample(links, num_to_fail)
    failed.remove_links(to_fail)
    failed.name = f"{topology.name}+{fraction:.0%}-link-failures"
    return failed


def fail_random_switches(
    topology: Topology, fraction: float, rng: RngLike = None
) -> Topology:
    """Return a copy with a random ``fraction`` of switches (and their links) removed.

    Servers attached to failed switches are removed along with the switch.
    """
    require_fraction(fraction, "fraction")
    rand = ensure_rng(rng)
    failed = topology.copy()
    switches = list(failed.graph.nodes)
    num_to_fail = int(round(fraction * len(switches)))
    if num_to_fail == 0:
        return failed
    to_fail = rand.sample(switches, num_to_fail)
    for switch in to_fail:
        failed.graph.remove_node(switch)
        failed.ports.pop(switch, None)
        failed.servers.pop(switch, None)
    failed.name = f"{topology.name}+{fraction:.0%}-switch-failures"
    return failed


def _sample_failure_mask(count: int, fraction: float, rng: RngLike) -> np.ndarray:
    """Boolean mask with ``round(fraction * count)`` uniformly sampled slots.

    Draws from the rng exactly like the copy-and-remove paths'
    ``rand.sample(list(...), m)`` (sampling indices instead of elements
    consumes the identical stream), which is what makes the mask-based
    failures select the same links/switches as the historical functions for
    the same seed.
    """
    require_fraction(fraction, "fraction")
    rand = ensure_rng(rng)
    mask = np.zeros(count, dtype=bool)
    num_to_fail = int(round(fraction * count))
    if num_to_fail:
        mask[rand.sample(range(count), num_to_fail)] = True
    return mask


def link_failure_mask(
    num_links: int, fraction: float, rng: RngLike = None
) -> np.ndarray:
    """Boolean failure mask over a core's edge array.

    For the same seed the masked edges are the ones
    :func:`fail_random_links` would remove.
    """
    return _sample_failure_mask(num_links, fraction, rng)


def fail_random_links_core(
    core: TopologyCore, fraction: float, rng: RngLike = None
) -> TopologyCore:
    """Mask-based link failure over a :class:`TopologyCore` (vectorized).

    Returns a new core with a random ``fraction`` of links removed; the
    surviving adjacency keeps its order, and the removed edge set matches
    :func:`fail_random_links` for the same seed.
    """
    mask = link_failure_mask(core.num_edges, fraction, rng)
    return core.without_edges(mask)


def switch_failure_mask(
    num_switches: int, fraction: float, rng: RngLike = None
) -> np.ndarray:
    """Boolean switch-failure mask aligned with a core's label order.

    For the same seed the masked switches are the ones
    :func:`fail_random_switches` would remove.
    """
    return _sample_failure_mask(num_switches, fraction, rng)


def fail_random_switches_core(
    core: TopologyCore, fraction: float, rng: RngLike = None
) -> TopologyCore:
    """Mask-based switch failure over a :class:`TopologyCore`.

    Failed switches disappear along with their links and attached servers,
    matching :func:`fail_random_switches` for the same seed.
    """
    mask = switch_failure_mask(core.num_nodes, fraction, rng)
    return core.without_nodes(mask)


def failed_link_topology(
    topology: Topology, fraction: float, rng: RngLike = None
) -> Topology:
    """Mask-based equivalent of :func:`fail_random_links`.

    Failures are selected on the :class:`TopologyCore` edge array (one rng
    draw over indices -- the identical stream the copy-and-remove path
    consumes) and the surviving core is re-ordered exactly as
    ``nx.Graph.copy`` would (:meth:`TopologyCore.copy_as_graph_copy`), so
    the result is structurally byte-identical to
    ``fail_random_links(topology, fraction, rng)`` for the same seed --
    same edges, same adjacency order, same downstream routing tie-breaks --
    without ever materializing the intermediate ``networkx`` copy.
    """
    core = topology.core()
    mask = link_failure_mask(core.num_edges, fraction, rng)
    name = (
        f"{topology.name}+{fraction:.0%}-link-failures"
        if mask.any()
        else topology.name
    )
    return Topology.from_core(core.without_edges(mask).copy_as_graph_copy(), name=name)


def failed_switch_topology(
    topology: Topology, fraction: float, rng: RngLike = None
) -> Topology:
    """Mask-based equivalent of :func:`fail_random_switches`."""
    core = topology.core()
    mask = switch_failure_mask(core.num_nodes, fraction, rng)
    name = (
        f"{topology.name}+{fraction:.0%}-switch-failures"
        if mask.any()
        else topology.name
    )
    return Topology.from_core(core.without_nodes(mask).copy_as_graph_copy(), name=name)


def throughput_under_link_failures(
    topology: Topology,
    fractions,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> List[Tuple[float, float]]:
    """Normalized throughput after failing each fraction of links.

    Returns (fraction, normalized throughput) pairs; the traffic matrix is an
    independently sampled random permutation for each point, as in Fig 8.
    Pairs left disconnected by the failures count as zero throughput.

    Failure selection runs through the mask-based core path
    (:func:`failed_link_topology`) and evaluation through the
    degradation-aware harness
    (:func:`repro.flow.throughput.degraded_throughput`); both are
    seed-for-seed identical to the historical copy-and-remove /
    special-cased implementation, which survives only as the parity pin in
    ``tests/test_failures.py``.
    """
    rand = ensure_rng(rng)
    baseline = topology.num_servers
    results = []
    for fraction in fractions:
        failed = failed_link_topology(topology, fraction, rng=rand)
        outcome = degraded_throughput(
            failed, engine=engine, k=k, rng=rand, baseline_servers=baseline
        )
        results.append((fraction, outcome.normalized))
    return results


def throughput_under_switch_failures(
    topology: Topology,
    fractions,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> List[Tuple[float, float, DegradationReport]]:
    """Normalized throughput after failing each fraction of switches.

    Returns (fraction, normalized throughput, report) triples.  Unlike link
    failures, failing switches removes their servers, so the degenerate
    case of failing every server-hosting switch is well-formed here: the
    empty traffic matrix reports **zero** throughput with a
    :class:`~repro.failures.degradation.DegradationReport` accounting for
    every stranded server (historically this fell through to an empty
    demand set that max-min/LP scored as fully served).
    """
    rand = ensure_rng(rng)
    baseline = topology.num_servers
    results = []
    for fraction in fractions:
        failed = failed_switch_topology(topology, fraction, rng=rand)
        outcome = degraded_throughput(
            failed, engine=engine, k=k, rng=rand, baseline_servers=baseline
        )
        results.append((fraction, outcome.normalized, outcome.report))
    return results


def _throughput_with_disconnections(topology: Topology, engine, k, rand) -> float:
    """Throughput when some switch pairs may be unreachable (legacy shim).

    Retained for the ensemble scenario targets; the component filtering now
    runs on the CSR labeling shared with :mod:`repro.failures.degradation`
    (numerically identical to the old per-call ``networkx`` component
    scan).
    """
    from repro.traffic.matrices import TrafficMatrix, random_permutation_traffic

    traffic = random_permutation_traffic(topology, rng=rand)
    if len(traffic) == 0:
        return 1.0
    reachable, _ = split_reachable_demands(topology, traffic)
    if not reachable:
        return 0.0
    result = normalized_throughput(
        topology, TrafficMatrix(reachable), engine=engine, k=k, rng=rand
    )
    return (result.normalized * len(reachable)) / len(traffic)
