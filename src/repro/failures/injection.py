"""Random link and switch failures.

The paper's Fig 8 fails a random fraction of inter-switch links and measures
the drop in per-server throughput: Jellyfish degrades more gracefully than a
same-equipment fat-tree, and failing 15% of links costs less than 16% of
capacity.  A failed random graph is "just another random graph", so the
degradation is close to proportional.

Two failure interfaces are provided:

* the historical copy-and-remove functions (:func:`fail_random_links`,
  :func:`fail_random_switches`) that operate on a :class:`Topology`;
* vectorized mask-based variants over a
  :class:`~repro.topologies.core.TopologyCore`'s edge arrays
  (:func:`link_failure_mask` / :func:`fail_random_links_core` and the
  switch equivalents), used by the ensemble subsystem where hundreds of
  failed instances are generated without materializing ``networkx``
  graphs.  For the same seed the mask selects exactly the edges the
  copy-and-remove path would have removed (the rng draws depend only on
  the edge count, and core edge order equals ``list(graph.edges)`` order);
  the parity suite in ``tests/test_topology_core.py`` pins this.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

import numpy as np

from repro.flow.throughput import normalized_throughput
from repro.topologies.base import Topology
from repro.topologies.core import TopologyCore
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_fraction


def fail_random_links(
    topology: Topology, fraction: float, rng: RngLike = None
) -> Topology:
    """Return a copy of ``topology`` with a random ``fraction`` of links removed.

    Server attachment links are never failed (only the switch interconnect),
    matching the paper's experiment.  If removing the links disconnects a
    switch that hosts servers, the copy is still returned -- the throughput
    evaluation will simply report the resulting capacity loss.
    """
    require_fraction(fraction, "fraction")
    rand = ensure_rng(rng)
    failed = topology.copy()
    links: List[Tuple[Hashable, Hashable]] = list(failed.graph.edges)
    num_to_fail = int(round(fraction * len(links)))
    if num_to_fail == 0:
        return failed
    to_fail = rand.sample(links, num_to_fail)
    failed.remove_links(to_fail)
    failed.name = f"{topology.name}+{fraction:.0%}-link-failures"
    return failed


def fail_random_switches(
    topology: Topology, fraction: float, rng: RngLike = None
) -> Topology:
    """Return a copy with a random ``fraction`` of switches (and their links) removed.

    Servers attached to failed switches are removed along with the switch.
    """
    require_fraction(fraction, "fraction")
    rand = ensure_rng(rng)
    failed = topology.copy()
    switches = list(failed.graph.nodes)
    num_to_fail = int(round(fraction * len(switches)))
    if num_to_fail == 0:
        return failed
    to_fail = rand.sample(switches, num_to_fail)
    for switch in to_fail:
        failed.graph.remove_node(switch)
        failed.ports.pop(switch, None)
        failed.servers.pop(switch, None)
    failed.name = f"{topology.name}+{fraction:.0%}-switch-failures"
    return failed


def _sample_failure_mask(count: int, fraction: float, rng: RngLike) -> np.ndarray:
    """Boolean mask with ``round(fraction * count)`` uniformly sampled slots.

    Draws from the rng exactly like the copy-and-remove paths'
    ``rand.sample(list(...), m)`` (sampling indices instead of elements
    consumes the identical stream), which is what makes the mask-based
    failures select the same links/switches as the historical functions for
    the same seed.
    """
    require_fraction(fraction, "fraction")
    rand = ensure_rng(rng)
    mask = np.zeros(count, dtype=bool)
    num_to_fail = int(round(fraction * count))
    if num_to_fail:
        mask[rand.sample(range(count), num_to_fail)] = True
    return mask


def link_failure_mask(
    num_links: int, fraction: float, rng: RngLike = None
) -> np.ndarray:
    """Boolean failure mask over a core's edge array.

    For the same seed the masked edges are the ones
    :func:`fail_random_links` would remove.
    """
    return _sample_failure_mask(num_links, fraction, rng)


def fail_random_links_core(
    core: TopologyCore, fraction: float, rng: RngLike = None
) -> TopologyCore:
    """Mask-based link failure over a :class:`TopologyCore` (vectorized).

    Returns a new core with a random ``fraction`` of links removed; the
    surviving adjacency keeps its order, and the removed edge set matches
    :func:`fail_random_links` for the same seed.
    """
    mask = link_failure_mask(core.num_edges, fraction, rng)
    return core.without_edges(mask)


def switch_failure_mask(
    num_switches: int, fraction: float, rng: RngLike = None
) -> np.ndarray:
    """Boolean switch-failure mask aligned with a core's label order.

    For the same seed the masked switches are the ones
    :func:`fail_random_switches` would remove.
    """
    return _sample_failure_mask(num_switches, fraction, rng)


def fail_random_switches_core(
    core: TopologyCore, fraction: float, rng: RngLike = None
) -> TopologyCore:
    """Mask-based switch failure over a :class:`TopologyCore`.

    Failed switches disappear along with their links and attached servers,
    matching :func:`fail_random_switches` for the same seed.
    """
    mask = switch_failure_mask(core.num_nodes, fraction, rng)
    return core.without_nodes(mask)


def throughput_under_link_failures(
    topology: Topology,
    fractions,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> List[Tuple[float, float]]:
    """Normalized throughput after failing each fraction of links.

    Returns (fraction, normalized throughput) pairs; the traffic matrix is an
    independently sampled random permutation for each point, as in Fig 8.
    Pairs left disconnected by the failures count as zero throughput.
    """
    rand = ensure_rng(rng)
    results = []
    for fraction in fractions:
        failed = fail_random_links(topology, fraction, rng=rand)
        if not failed.is_connected():
            # Evaluate only the largest connected component's traffic; the
            # remainder contributes zero.
            results.append((fraction, _throughput_with_disconnections(failed, engine, k, rand)))
            continue
        result = normalized_throughput(failed, engine=engine, k=k, rng=rand)
        results.append((fraction, result.normalized))
    return results


def _throughput_with_disconnections(topology: Topology, engine, k, rand) -> float:
    """Throughput when some switch pairs may be unreachable."""
    import networkx as nx

    from repro.traffic.matrices import TrafficMatrix, random_permutation_traffic

    traffic = random_permutation_traffic(topology, rng=rand)
    if len(traffic) == 0:
        return 1.0
    components = list(nx.connected_components(topology.graph))
    component_of = {}
    for index, component in enumerate(components):
        for node in component:
            component_of[node] = index

    reachable = [
        d
        for d in traffic
        if component_of[d.source_switch] == component_of[d.destination_switch]
    ]
    unreachable_count = len(traffic) - len(reachable)
    if not reachable:
        return 0.0
    result = normalized_throughput(
        topology, TrafficMatrix(reachable), engine=engine, k=k, rng=rand
    )
    total_flows = len(traffic)
    return (result.normalized * len(reachable)) / total_flows if total_flows else 0.0
