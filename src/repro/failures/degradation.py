"""Degradation semantics for partitioned topologies.

Failures can disconnect a topology, and the compute core used to handle
that ad hoc: fig08 special-cased disconnected graphs, the LP raised on
unreachable pairs, and a failure pattern that removed every server-hosting
switch produced an *empty* traffic matrix that downstream code happily
reported as fully served.  This module defines the one explicit contract
every kernel now follows:

* **Unreachable pairs carry zero throughput.**  A demand whose endpoints
  sit in different connected components contributes 0.0 to every
  throughput statistic; reachable demands are evaluated normally within
  their components.
* **Nothing raises on a partitioned graph.**  Routing skips unreachable
  pairs (``on_unreachable="skip"``), max-min accepts unrouted flows, the
  AIMD engine reports unreachable connections at 0.0, and the LP harness
  filters demands before solving.
* **Degradation is reported, not inferred.**  Every degradation-aware
  evaluation returns a structured :class:`DegradationReport` -- component
  sizes, stranded servers, unreachable demand counts -- so "the number
  went down" and "the network fell apart" are distinguishable.

The report is cheap (one BFS sweep over the CSR view) and is the unit the
lifecycle engine maintains *incrementally* between failure/repair events
(:mod:`repro.lifecycle`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.graphs.properties import csr_component_labels


@dataclass(frozen=True)
class DegradationReport:
    """Structural damage summary for one (possibly partitioned) topology.

    ``component_sizes`` / ``component_servers`` are aligned, sorted by
    server count (then switch count) descending, so index 0 is the
    *principal* component -- the one that keeps serving the most traffic.
    ``stranded_servers`` counts servers outside the principal component;
    when ``baseline_servers`` is set (the healthy plant's server count),
    servers lost outright with their failed switches are stranded too.
    ``demand_pairs`` / ``unreachable_pairs`` describe the evaluated traffic
    matrix (both 0 when no traffic was supplied).
    """

    num_switches: int
    num_servers: int
    component_sizes: Tuple[int, ...]
    component_servers: Tuple[int, ...]
    stranded_servers: int
    demand_pairs: int = 0
    unreachable_pairs: int = 0
    baseline_servers: Optional[int] = None

    @property
    def num_components(self) -> int:
        return len(self.component_sizes)

    @property
    def connected(self) -> bool:
        """True when no demand can be stranded by partition or server loss."""
        return (
            self.num_components <= 1
            and self.stranded_servers == 0
            and self.unreachable_pairs == 0
        )

    @property
    def server_pair_connectivity(self) -> float:
        """Fraction of server pairs still connected (the availability metric).

        The denominator is the healthy plant's server-pair count when
        ``baseline_servers`` is set, so servers removed along with failed
        switches count as disconnected; otherwise the current population.
        An empty denominator reports 1.0 (vacuously available).
        """
        total = (
            self.baseline_servers
            if self.baseline_servers is not None
            else self.num_servers
        )
        total_pairs = total * (total - 1) // 2
        if total_pairs == 0:
            return 1.0
        connected = sum(s * (s - 1) // 2 for s in self.component_servers)
        return connected / total_pairs

    def as_dict(self) -> dict:
        return {
            "num_switches": self.num_switches,
            "num_servers": self.num_servers,
            "num_components": self.num_components,
            "component_sizes": list(self.component_sizes),
            "component_servers": list(self.component_servers),
            "stranded_servers": self.stranded_servers,
            "demand_pairs": self.demand_pairs,
            "unreachable_pairs": self.unreachable_pairs,
            "baseline_servers": self.baseline_servers,
            "server_pair_connectivity": self.server_pair_connectivity,
        }


def component_labels_by_node(topology) -> Dict[Hashable, int]:
    """Connected-component label for every switch of ``topology``."""
    csr = topology.csr()
    labels = csr_component_labels(csr)
    return {node: int(labels[i]) for i, node in enumerate(csr.nodes)}


def _component_table(
    topology,
) -> Tuple[Dict[Hashable, int], List[int], List[int]]:
    """Per-node labels plus per-component switch and server counts."""
    csr = topology.csr()
    labels = csr_component_labels(csr)
    count = int(labels.max()) + 1 if csr.num_nodes else 0
    switch_counts = [0] * count
    server_counts = [0] * count
    by_node: Dict[Hashable, int] = {}
    servers = getattr(topology, "servers", {}) or {}
    for index, node in enumerate(csr.nodes):
        label = int(labels[index])
        by_node[node] = label
        switch_counts[label] += 1
        server_counts[label] += int(servers.get(node, 0))
    return by_node, switch_counts, server_counts


def degradation_report(
    topology,
    traffic=None,
    baseline_servers: Optional[int] = None,
) -> DegradationReport:
    """Build a :class:`DegradationReport` for ``topology``.

    ``traffic`` (a :class:`~repro.traffic.matrices.TrafficMatrix`) is
    optional; when given, its demands are classified as reachable or
    unreachable under the component labeling.  ``baseline_servers`` is the
    healthy plant's server count, letting the report account for servers
    removed along with failed switches.
    """
    by_node, switch_counts, server_counts = _component_table(topology)
    order = sorted(
        range(len(switch_counts)),
        key=lambda label: (-server_counts[label], -switch_counts[label], label),
    )
    sizes = tuple(switch_counts[label] for label in order)
    comp_servers = tuple(server_counts[label] for label in order)
    num_servers = sum(comp_servers)
    principal = comp_servers[0] if comp_servers else 0
    stranded = num_servers - principal
    if baseline_servers is not None:
        stranded += max(0, baseline_servers - num_servers)

    demand_pairs = 0
    unreachable = 0
    if traffic is not None:
        for demand in traffic:
            demand_pairs += 1
            src = demand.source_switch
            dst = demand.destination_switch
            if src != dst and by_node.get(src) != by_node.get(dst):
                unreachable += 1

    return DegradationReport(
        num_switches=sum(sizes),
        num_servers=num_servers,
        component_sizes=sizes,
        component_servers=comp_servers,
        stranded_servers=stranded,
        demand_pairs=demand_pairs,
        unreachable_pairs=unreachable,
        baseline_servers=baseline_servers,
    )


def split_reachable_demands(topology, traffic) -> Tuple[list, list]:
    """Partition a traffic matrix's demands into (reachable, unreachable).

    A demand is reachable when both endpoint switches sit in the same
    connected component (same-switch demands always are).
    """
    by_node = component_labels_by_node(topology)
    reachable = []
    unreachable = []
    for demand in traffic:
        src = demand.source_switch
        dst = demand.destination_switch
        if src == dst or by_node.get(src) == by_node.get(dst):
            reachable.append(demand)
        else:
            unreachable.append(demand)
    return reachable, unreachable
