"""Failure injection (paper Section 4.3, Fig 8)."""

from repro.failures.injection import (
    fail_random_links,
    fail_random_switches,
    throughput_under_link_failures,
)

__all__ = [
    "fail_random_links",
    "fail_random_switches",
    "throughput_under_link_failures",
]
