"""Failure injection (paper Section 4.3, Fig 8) and degradation semantics."""

from repro.failures.degradation import (
    DegradationReport,
    degradation_report,
    split_reachable_demands,
)
from repro.failures.injection import (
    fail_random_links,
    fail_random_switches,
    throughput_under_link_failures,
    throughput_under_switch_failures,
)

__all__ = [
    "DegradationReport",
    "degradation_report",
    "fail_random_links",
    "fail_random_switches",
    "split_reachable_demands",
    "throughput_under_link_failures",
    "throughput_under_switch_failures",
]
