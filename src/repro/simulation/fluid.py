"""Fluid (flow-level) simulator for routing + congestion-control studies.

The paper evaluates Jellyfish and the fat-tree under combinations of routing
(ECMP, k-shortest paths) and congestion control (TCP with 1 or 8 flows per
server pair, MPTCP with 8 subflows) using the MPTCP authors' packet
simulator.  That simulator is not available offline, so this module models
the steady state those protocols converge to as a max-min fair allocation
problem (see DESIGN.md, substitution 2):

* **TCP, 1 flow** -- each server pair places one flow on a single path
  chosen from its routing path set by a random hash.
* **TCP, 8 flows** -- eight parallel connections striped round-robin over
  the available paths; the application stripes data evenly, so each
  connection is capped at 1/8 of the pair's demand.
* **MPTCP, 8 subflows** -- eight subflows over the available paths with the
  coupled congestion controller free to rebalance: only the aggregate demand
  cap applies.

Routing supplies the candidate paths: ``"ecmp"`` uses up to ``k`` equal-cost
shortest paths, ``"ksp"`` uses Yen's k shortest paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.flow.maxmin import FlowSpec, max_min_fair_allocation
from repro.routing.ksp import Path
from repro.simulation.capacity import link_capacities
from repro.routing.paths import PathSet, shared_path_set
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix, random_permutation_traffic
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.stats import jains_fairness_index, mean

TCP_ONE_FLOW = "tcp1"
TCP_EIGHT_FLOWS = "tcp8"
MPTCP = "mptcp"

_CONGESTION_CONTROLS = (TCP_ONE_FLOW, TCP_EIGHT_FLOWS, MPTCP)


@dataclass(frozen=True)
class SimulationConfig:
    """Routing and congestion-control selection for the fluid simulator."""

    routing: str = "ksp"
    k: int = 8
    congestion_control: str = MPTCP
    subflows: int = 8

    def __post_init__(self) -> None:
        if self.routing not in ("ksp", "ecmp"):
            raise ValueError(f"unknown routing scheme {self.routing!r}")
        if self.congestion_control not in _CONGESTION_CONTROLS:
            raise ValueError(
                f"unknown congestion control {self.congestion_control!r}"
            )
        if self.k <= 0 or self.subflows <= 0:
            raise ValueError("k and subflows must be positive")


@dataclass
class FluidResult:
    """Per-flow normalized throughputs and their summaries."""

    flow_throughputs: List[float] = field(default_factory=list)
    link_loads: Dict[Tuple[Hashable, Hashable], float] = field(default_factory=dict)

    @property
    def average_throughput(self) -> float:
        if not self.flow_throughputs:
            return 1.0
        return mean(self.flow_throughputs)

    @property
    def fairness(self) -> float:
        if not self.flow_throughputs:
            return 1.0
        return jains_fairness_index(self.flow_throughputs)

    def sorted_throughputs(self) -> List[float]:
        return sorted(self.flow_throughputs)


def _link_capacities(topology: Topology) -> Dict[Tuple[Hashable, Hashable], float]:
    """Directed link capacities (shared, content-hash-cached helper).

    Kept as a module-level name for the benchmark recorders; the
    implementation lives in :func:`repro.simulation.capacity.link_capacities`
    and is shared with the AIMD round engine.  The returned table is cache
    state -- read-only (the MPTCP allocator copies it before draining).
    """
    return link_capacities(topology)


def _build_flow_specs(
    traffic: TrafficMatrix,
    path_set: PathSet,
    config: SimulationConfig,
    rand,
) -> List[FlowSpec]:
    specs: List[FlowSpec] = []
    for index, demand in enumerate(traffic):
        src, dst = demand.source_switch, demand.destination_switch
        flow_id = (index, demand.source, demand.destination)
        if src == dst:
            # Same-rack traffic never crosses the network: model as a single
            # zero-hop path that is always satisfied.
            specs.append(FlowSpec(flow_id=flow_id, paths=[(src,)], demand=demand.rate))
            continue
        options = path_set.get((src, dst))
        if not options:
            # Degradation semantics: an unreachable pair (absent from a
            # skip-mode path set on a partitioned topology) becomes an
            # unrouted flow -- no subflows, allocated exactly 0.0.
            specs.append(FlowSpec(flow_id=flow_id, paths=[], demand=demand.rate))
            continue

        if config.congestion_control == TCP_ONE_FLOW:
            chosen = options[rand.randrange(len(options))]
            specs.append(
                FlowSpec(flow_id=flow_id, paths=[chosen], demand=demand.rate)
            )
            continue

        subflow_paths = [
            options[i % len(options)] for i in range(config.subflows)
        ]
        if config.congestion_control == TCP_EIGHT_FLOWS:
            caps = [demand.rate / config.subflows] * config.subflows
            specs.append(
                FlowSpec(
                    flow_id=flow_id,
                    paths=subflow_paths,
                    demand=demand.rate,
                    subflow_caps=caps,
                )
            )
        else:  # MPTCP: only the aggregate cap applies
            specs.append(
                FlowSpec(flow_id=flow_id, paths=subflow_paths, demand=demand.rate)
            )
    return specs


def _allocate_mptcp_sequential(
    specs: List[FlowSpec],
    capacities: Dict[Tuple[Hashable, Hashable], float],
    default_capacity: float = 1.0,
) -> Tuple[Dict[Hashable, float], Dict[Tuple[Hashable, Hashable], float]]:
    """Allocate MPTCP flows by filling paths in rank order.

    MPTCP's coupled congestion controller keeps traffic on the least
    congested, lowest-RTT subflows and only spills onto additional paths when
    the better ones are saturated ("do no harm" / "balance congestion").  We
    model that equilibrium by repeated max-min rounds over path-length tiers:
    in round ``i`` every connection that has not yet reached its demand
    offers its remaining demand jointly on all of its ``i``-th shortest-tier
    paths, sharing whatever capacity previous rounds left behind.  For ECMP
    path sets (all paths equal length) this collapses to a single joint
    max-min round.

    Returns the per-flow rates and the accumulated per-link loads across
    every round.  ``default_capacity`` is the capacity assumed for links
    absent from ``capacities``, plumbed through to each round's
    :func:`max_min_fair_allocation` call.
    """
    remaining_capacity = dict(capacities)
    flow_rate: Dict[Hashable, float] = {spec.flow_id: 0.0 for spec in specs}
    link_loads: Dict[Tuple[Hashable, Hashable], float] = {}

    # Group each flow's paths into tiers by hop count (shortest tier first).
    tiers_by_flow: Dict[Hashable, List[List[Path]]] = {}
    max_tiers = 0
    for spec in specs:
        by_length: Dict[int, List[Path]] = {}
        for path in spec.paths:
            by_length.setdefault(len(path), []).append(path)
        tiers = [by_length[length] for length in sorted(by_length)]
        tiers_by_flow[spec.flow_id] = tiers
        max_tiers = max(max_tiers, len(tiers))

    for tier_index in range(max_tiers):
        round_specs = []
        for spec in specs:
            tiers = tiers_by_flow[spec.flow_id]
            if tier_index >= len(tiers):
                continue
            remaining = spec.demand - flow_rate[spec.flow_id]
            if remaining <= 1e-9:
                continue
            round_specs.append(
                FlowSpec(
                    flow_id=spec.flow_id,
                    paths=tiers[tier_index],
                    demand=remaining,
                )
            )
        if not round_specs:
            break
        allocation = max_min_fair_allocation(
            round_specs, remaining_capacity, default_capacity=default_capacity
        )
        for flow_id, rate in allocation.flow_rates.items():
            flow_rate[flow_id] += rate
        for link, load in allocation.link_loads.items():
            link_loads[link] = link_loads.get(link, 0.0) + load
            remaining_capacity[link] = max(
                0.0, remaining_capacity.get(link, default_capacity) - load
            )
    return flow_rate, link_loads


def simulate_fluid(
    topology: Topology,
    traffic: Optional[TrafficMatrix] = None,
    config: Optional[SimulationConfig] = None,
    rng: RngLike = None,
    path_set: Optional[PathSet] = None,
) -> FluidResult:
    """Run the fluid simulator and return per-flow normalized throughputs."""
    rand = ensure_rng(rng)
    if config is None:
        config = SimulationConfig()
    if traffic is None:
        traffic = random_permutation_traffic(topology, rng=rand)
    if len(traffic) == 0:
        return FluidResult()

    pairs = list(traffic.switch_pairs())
    if path_set is None:
        # The shared table is content-hashed per graph, so repeated runs over
        # one topology (fig10's trials, fig13's per-scheme passes) route each
        # switch pair once instead of once per traffic matrix.
        path_set = shared_path_set(
            topology.graph,
            pairs,
            scheme=config.routing,
            k=config.k,
            on_unreachable="skip",
        )

    specs = _build_flow_specs(traffic, path_set, config, rand)
    capacities = _link_capacities(topology)
    if config.congestion_control == MPTCP:
        # Each flow keeps one subflow per distinct candidate path; the coupled
        # controller fills better-ranked paths before spilling onto others.
        deduplicated = [
            FlowSpec(
                flow_id=spec.flow_id,
                paths=list(dict.fromkeys(spec.paths)),
                demand=spec.demand,
            )
            for spec in specs
        ]
        flow_rates, link_loads = _allocate_mptcp_sequential(deduplicated, capacities)
        throughputs = [
            min(flow_rates.get(spec.flow_id, 0.0) / spec.demand, 1.0) for spec in specs
        ]
        return FluidResult(flow_throughputs=throughputs, link_loads=link_loads)

    allocation = max_min_fair_allocation(specs, capacities)
    throughputs = []
    for spec in specs:
        rate = allocation.flow_rates.get(spec.flow_id, 0.0)
        throughputs.append(min(rate / spec.demand, 1.0))
    return FluidResult(flow_throughputs=throughputs, link_loads=allocation.link_loads)
