"""Shared link-capacity tables for the simulators.

Both the steady-state fluid model and the round-based AIMD engine need the
same thing before they can run: a directed-link -> capacity map for the
topology under test.  Historically each simulator carried a private copy of
the same helper, walking ``topology.graph.edges(data=True)`` per call.  This
module is the single implementation: it reads the array-native
:class:`~repro.topologies.core.TopologyCore` edge arrays (no ``networkx``
walk, and for core-backed topologies no graph materialization at all) and
memoizes the resulting table in a small content-hash-keyed LRU, so repeated
simulations over one topology -- the fig10/fig12 trial loops, the dynamics
sweeps' per-seed runs -- build the map once.

Explicit per-edge ``capacity`` attributes (only the Clos/leaf-spine family
sets them) are honored: they can only exist on a materialized graph, are
collected in one pass, and participate in the cache key so structurally
identical topologies with different capacity annotations never share an
entry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Tuple
from weakref import WeakKeyDictionary

import networkx as nx

from repro.graphs.csr import _graph_fingerprint
from repro.topologies.base import Topology

DirectedLink = Tuple[Hashable, Hashable]

#: Content-hash-keyed LRU of capacity tables (same discipline as the shared
#: path tables in :mod:`repro.routing.paths`).
_CAPACITY_CACHE: "OrderedDict[tuple, Dict[DirectedLink, float]]" = OrderedDict()
_CAPACITY_CACHE_MAX = 16

#: Per-graph memo of explicit ``capacity`` edge attributes, revalidated
#: against the structural fingerprint so cache hits skip the O(E) edge walk.
_EXPLICIT_CACHE: "WeakKeyDictionary[nx.Graph, tuple]" = WeakKeyDictionary()


def _explicit_capacities(graph: nx.Graph) -> tuple:
    """Edges carrying an explicit ``capacity`` attribute, as a tuple.

    Memoized per graph object and revalidated against the same structural
    fingerprint the CSR cache uses, so repeated calls on an unchanged graph
    are O(1) instead of re-walking every edge.  Like that fingerprint, the
    check is structural: an in-place edit of the ``capacity`` attribute
    alone (which nothing in this codebase does -- capacities are set at
    construction) is not detected.
    """
    fingerprint = _graph_fingerprint(graph)
    cached = _EXPLICIT_CACHE.get(graph)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    explicit = tuple(
        (u, v, float(cap))
        for u, v, cap in graph.edges.data("capacity")
        if cap is not None
    )
    _EXPLICIT_CACHE[graph] = (fingerprint, explicit)
    return explicit


def link_capacities(topology: Topology, scale: float = 1.0) -> Dict[DirectedLink, float]:
    """Directed link capacities of ``topology``, scaled by ``scale``.

    Every undirected edge contributes both orientations.  Edges default to
    capacity ``1.0``; explicit ``capacity`` edge attributes (leaf-spine
    trunks) override it.  ``scale`` converts units -- the fluid model uses
    ``1.0`` (line rates), the AIMD engine passes ``packets_per_round``.

    The returned dict is shared cache state: callers must treat it as
    read-only (copy before mutating, as the MPTCP tiered allocator does).
    """
    explicit: Tuple[Tuple[Hashable, Hashable, float], ...] = ()
    if topology.has_materialized_graph:
        explicit = _explicit_capacities(topology.graph)
    key = (topology.content_hash(), float(scale), explicit)
    cached = _CAPACITY_CACHE.get(key)
    if cached is not None:
        _CAPACITY_CACHE.move_to_end(key)
        return cached

    core = topology.core()
    labels = core.labels
    capacities: Dict[DirectedLink, float] = {}
    # edge_array order follows nx.Graph.edges iteration of the equivalent
    # graph, so the table's iteration order matches the historical per-call
    # edge walk.
    for u_index, v_index in core.edge_array().tolist():
        u, v = labels[u_index], labels[v_index]
        capacities[(u, v)] = scale
        capacities[(v, u)] = scale
    for u, v, cap in explicit:
        value = cap * scale
        capacities[(u, v)] = value
        capacities[(v, u)] = value

    _CAPACITY_CACHE[key] = capacities
    while len(_CAPACITY_CACHE) > _CAPACITY_CACHE_MAX:
        _CAPACITY_CACHE.popitem(last=False)
    return capacities


def clear_capacity_cache() -> None:
    """Drop every cached capacity table (benchmarks measure cold starts)."""
    _CAPACITY_CACHE.clear()
    _EXPLICIT_CACHE.clear()
