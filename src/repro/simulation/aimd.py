"""Round-based AIMD (TCP / MPTCP) simulator -- vectorized round engine.

A dynamic counterpart to the steady-state fluid model in
:mod:`repro.simulation.fluid`: congestion windows evolve round by round
(one round approximates one RTT) with additive increase and multiplicative
decrease, and MPTCP subflows use a coupled ("linked increases"-style)
controller that shifts window growth toward less congested paths.  It is a
deliberately small model of the MPTCP authors' packet simulator (see
DESIGN.md, substitution 2), used to cross-validate the fluid results and to
study convergence dynamics (the ``fig12-dynamics`` / ``fig13-dynamics``
sweeps).

Model per round (two-phase: all deliveries are computed, then all windows
update from the completed round's goodputs):

1. every subflow offers ``cwnd`` packets along its fixed path, scaled down
   so a connection's aggregate offer never exceeds its demand (the NIC
   rate); TCP-with-8-flows subflows are additionally capped at
   ``demand / subflows`` each, matching the fluid model's even striping;
2. every directed link can carry ``capacity * packets_per_round`` packets;
   if offers exceed capacity, the excess is dropped proportionally to each
   subflow's offer (drop-tail approximation);
3. subflows that lost packets halve their window; others grow -- plain TCP
   subflows by one packet, MPTCP subflows by an amount weighted toward the
   subflows of the same connection that currently deliver the most goodput.

The round loop is array-native, in the style of the max-min kernel in
:mod:`repro.flow.maxmin`: subflow paths are compiled once into a CSR
subflow->directed-link incidence (``int64`` directed-link keys compacted
to dense link ids, per-subflow hop slices), and each round is a handful of
numpy passes -- per-link offered
load via ``np.bincount`` over the hop->link map, per-link accept ratios in
one divide, per-subflow bottleneck accept via ``np.minimum.reduceat`` over
the hop slices, and per-connection demand caps / coupled-increase totals
via ``np.bincount`` over the subflow->connection map (a segmented sum that
accumulates in subflow order, which is what keeps the results bit-identical
to the scalar reference).  No Python-level per-subflow work happens inside
the round loop.  The scalar implementation is retained as
:func:`repro.simulation._reference.simulate_aimd_reference` and pinned by
the hypothesis parity suite in ``tests/test_aimd_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.routing.paths import PathSet, shared_path_set
from repro.simulation.capacity import link_capacities
from repro.telemetry import count, trace
from repro.simulation.fluid import (
    MPTCP,
    TCP_EIGHT_FLOWS,
    TCP_ONE_FLOW,
    SimulationConfig,
)
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix, random_permutation_traffic
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.stats import jains_fairness_index, mean

DirectedLink = Tuple[Hashable, Hashable]

#: A subflow that delivered less than this fraction of its offer is treated
#: as having lost packets (multiplicative decrease).
LOSS_THRESHOLD = 1.0 - 1e-9


@dataclass(frozen=True)
class AimdConfig:
    """Parameters of the round-based simulator."""

    routing: str = "ksp"
    k: int = 8
    congestion_control: str = MPTCP
    subflows: int = 8
    rounds: int = 200
    warmup_rounds: int = 50
    packets_per_round: int = 100
    initial_cwnd: float = 2.0
    #: Expose the per-round per-connection goodput trace on the result.
    record_trace: bool = False
    #: Settling tolerance for :func:`measure_convergence_round`.
    convergence_tolerance: float = 0.05
    #: Trailing smoothing window (rounds) applied before the settling test,
    #: so AIMD's sawtooth does not mask convergence of the mean allocation.
    convergence_window: int = 8

    def __post_init__(self) -> None:
        # Routing / congestion-control / k / subflows checks are shared with
        # the fluid model's config.
        self.to_simulation_config()
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if not 0 <= self.warmup_rounds < self.rounds:
            raise ValueError(
                f"warmup_rounds ({self.warmup_rounds}) must lie in [0, rounds); "
                f"a warm-up of at least rounds ({self.rounds}) would measure "
                "nothing"
            )
        if self.packets_per_round < 1:
            raise ValueError("packets_per_round must be at least 1")

    def to_simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            routing=self.routing,
            k=self.k,
            congestion_control=self.congestion_control,
            subflows=self.subflows,
        )


@dataclass
class AimdResult:
    """Per-connection normalized throughput measured after warm-up.

    ``flow_throughputs`` has one entry per positive-rate demand, in demand
    order (same-rack demands count as fully served).  ``convergence_round``
    is the first measured round from which the smoothed per-connection
    goodput stays within the configured tolerance of its settled value
    (``None`` when it never settles or nothing was measured).  ``trace`` is
    the per-round normalized goodput matrix (rounds x reported connections,
    aligned with ``flow_throughputs``), populated only when
    ``AimdConfig.record_trace`` is set.
    """

    flow_throughputs: List[float] = field(default_factory=list)
    rounds: int = 0
    convergence_round: Optional[int] = None
    trace: Optional[np.ndarray] = None

    @property
    def average_throughput(self) -> float:
        if not self.flow_throughputs:
            return 1.0
        return mean(self.flow_throughputs)

    @property
    def fairness(self) -> float:
        if not self.flow_throughputs:
            return 1.0
        return jains_fairness_index(self.flow_throughputs)


def measure_convergence_round(
    trace: np.ndarray,
    warmup_rounds: int,
    tolerance: float = 0.05,
    window: int = 8,
) -> Optional[int]:
    """First measured round from which per-connection goodput has settled.

    ``trace`` is the full per-round normalized goodput matrix (all rounds,
    one column per reported connection).  Rounds before ``warmup_rounds``
    are ignored.  Each measured column is smoothed with a trailing moving
    average of ``window`` rounds; the settled value is the final smoothed
    allocation, and a round counts as settled when every connection's
    smoothed goodput is within ``tolerance`` of it.  Returns the absolute
    round index of the first round from which *all* subsequent rounds are
    settled.  The settled tail must hold for at least ``max(2, window)``
    rounds -- the final round is always trivially within tolerance of
    itself, so a trace still drifting at the end (or a measurement window
    shorter than the required tail) reports ``None`` (not converged) rather
    than a spurious last-minute settling.
    """
    trace = np.asarray(trace, dtype=np.float64)
    if trace.ndim != 2:
        raise ValueError("trace must be a (rounds, connections) matrix")
    measured = trace[warmup_rounds:]
    num_rounds, num_connections = measured.shape
    if num_connections == 0 or num_rounds < max(2, int(window)):
        # Too short to demonstrate a settled tail of the promised length.
        return None
    window = max(1, min(int(window), num_rounds))
    # Trailing moving average via a padded cumulative sum: smooth[r] is the
    # mean of rounds max(0, r-window+1)..r.
    padded = np.zeros((num_rounds + 1, num_connections), dtype=np.float64)
    np.cumsum(measured, axis=0, out=padded[1:])
    starts = np.maximum(np.arange(num_rounds) - window + 1, 0)
    lengths = (np.arange(num_rounds) - starts + 1).astype(np.float64)
    smooth = (padded[1:] - padded[starts]) / lengths[:, None]
    deviation = np.abs(smooth - smooth[-1]).max(axis=1)
    unsettled = np.flatnonzero(deviation > tolerance)
    if unsettled.size == 0:
        return warmup_rounds
    last_bad = int(unsettled[-1])
    if last_bad >= num_rounds - max(2, window):
        return None
    return warmup_rounds + last_bad + 1


# --------------------------------------------------------------------------- #
# Subflow compilation
# --------------------------------------------------------------------------- #
@dataclass
class _CompiledSubflows:
    """The round engine's static state, compiled once per simulation.

    ``hop_links`` concatenates every subflow's path as directed-link ids;
    ``hop_starts``/``hop_counts`` delimit the per-subflow slices (every
    subflow has at least one hop -- same-rack demands never produce
    subflows).  ``connection_of`` maps subflows to demand indices,
    ``subflow_cap`` holds the per-subflow offer cap (``inf`` unless tcp8),
    and ``link_capacity`` the per-link-id packet budget.  ``unreachable``
    marks connections whose pair has no route on a partitioned topology --
    they produce no subflows and are reported at exactly 0.0 (the
    degradation semantics of :mod:`repro.failures.degradation`), distinct
    from same-rack connections which also lack subflows but count as fully
    served.
    """

    hop_links: np.ndarray
    hop_starts: np.ndarray
    hop_counts: np.ndarray
    connection_of: np.ndarray
    subflow_cap: np.ndarray
    link_capacity: np.ndarray
    demands: np.ndarray
    has_subflows: np.ndarray
    unreachable: np.ndarray
    num_connections: int
    num_subflows: int


def _compile_subflows(
    topology: Topology,
    traffic: TrafficMatrix,
    path_set: PathSet,
    config: AimdConfig,
    rand,
) -> _CompiledSubflows:
    """Compile traffic + paths into the engine's incidence arrays.

    Path-to-link-id translation happens once per distinct (pair, path) --
    connections sharing a switch pair reuse the compiled arrays -- and the
    tcp1 path draws consume ``rand.randrange`` in demand order, exactly as
    the scalar reference does, so both engines pick the same paths for the
    same rng.
    """
    csr = topology.csr()
    index_of = csr.index_of
    num_nodes = csr.num_nodes
    tcp1 = config.congestion_control == TCP_ONE_FLOW
    tcp8 = config.congestion_control == TCP_EIGHT_FLOWS

    # Per-pair compiled paths: each option becomes an int64 array of
    # directed-link keys (u * n + v in CSR index space).  An unreachable
    # pair (absent from a skip-mode path set) compiles to an empty option
    # list, not an exception.
    compiled_pairs: Dict[Tuple[Hashable, Hashable], List[np.ndarray]] = {}

    def compile_pair(pair: Tuple[Hashable, Hashable]) -> List[np.ndarray]:
        options = path_set.get(pair)
        if not options:
            return []
        arrays = []
        for path in options:
            indices = np.fromiter(
                (index_of[node] for node in path), dtype=np.int64, count=len(path)
            )
            arrays.append(indices[:-1] * num_nodes + indices[1:])
        return arrays

    chunks: List[np.ndarray] = []
    connection_of: List[int] = []
    hop_counts: List[int] = []
    subflow_cap: List[float] = []
    demands: List[float] = []
    has_subflows: List[bool] = []
    unreachable: List[bool] = []

    for index, demand in enumerate(traffic):
        src, dst = demand.source_switch, demand.destination_switch
        demand_pkts = demand.rate * config.packets_per_round
        demands.append(demand_pkts)
        if src == dst:
            has_subflows.append(False)
            unreachable.append(False)
            continue  # same-rack traffic never crosses the network
        pair = (src, dst)
        options = compiled_pairs.get(pair)
        if options is None:
            options = compiled_pairs[pair] = compile_pair(pair)
        if not options:
            # Degradation semantics: no route -> no subflows, 0.0 reported.
            has_subflows.append(False)
            unreachable.append(True)
            continue
        has_subflows.append(True)
        unreachable.append(False)
        if tcp1:
            chosen = options[rand.randrange(len(options))]
            chunks.append(chosen)
            connection_of.append(index)
            hop_counts.append(len(chosen))
            subflow_cap.append(np.inf)
        else:
            per_subflow = (
                demand_pkts / config.subflows if tcp8 else np.inf
            )
            for i in range(config.subflows):
                links = options[i % len(options)]
                chunks.append(links)
                connection_of.append(index)
                hop_counts.append(len(links))
                subflow_cap.append(per_subflow)

    num_subflows = len(chunks)
    if num_subflows:
        hop_keys = np.concatenate(chunks)
    else:
        hop_keys = np.empty(0, dtype=np.int64)
    # Compact the directed-link keys into dense link ids.
    unique_keys, hop_links = np.unique(hop_keys, return_inverse=True)
    hop_counts_arr = np.asarray(hop_counts, dtype=np.int64)
    hop_starts = np.zeros(num_subflows + 1, dtype=np.int64)
    np.cumsum(hop_counts_arr, out=hop_starts[1:])

    capacities = link_capacities(topology, scale=config.packets_per_round)
    nodes = csr.nodes
    default = float(config.packets_per_round)
    link_capacity = np.asarray(
        [
            capacities.get(
                (nodes[int(key // num_nodes)], nodes[int(key % num_nodes)]), default
            )
            for key in unique_keys
        ],
        dtype=np.float64,
    )

    return _CompiledSubflows(
        hop_links=hop_links.astype(np.intp, copy=False),
        hop_starts=hop_starts[:-1],
        hop_counts=hop_counts_arr,
        connection_of=np.asarray(connection_of, dtype=np.intp),
        subflow_cap=np.asarray(subflow_cap, dtype=np.float64),
        link_capacity=link_capacity,
        demands=np.asarray(demands, dtype=np.float64),
        has_subflows=np.asarray(has_subflows, dtype=bool),
        unreachable=np.asarray(unreachable, dtype=bool),
        num_connections=len(demands),
        num_subflows=num_subflows,
    )


# --------------------------------------------------------------------------- #
# The round engine
# --------------------------------------------------------------------------- #
def _run_rounds(
    compiled: _CompiledSubflows, config: AimdConfig
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Run the AIMD rounds; returns (per-round goodput, measured totals, n).

    The per-round matrix covers every connection (rounds x connections,
    absolute packet counts); ``measured totals`` accumulates the rounds at
    or past warm-up, adding one per-round total per connection per round --
    the same grouping the scalar reference uses, so sums are bit-identical.
    """
    mptcp = config.congestion_control == MPTCP
    conn = compiled.connection_of
    num_connections = compiled.num_connections
    hop_links = compiled.hop_links
    hop_starts = compiled.hop_starts
    hop_counts = compiled.hop_counts
    sub_cap = compiled.subflow_cap
    link_capacity = compiled.link_capacity
    demands = compiled.demands
    num_links = link_capacity.shape[0]

    cwnd = np.full(compiled.num_subflows, config.initial_cwnd, dtype=np.float64)
    round_goodput = np.zeros((config.rounds, num_connections), dtype=np.float64)
    measured_totals = np.zeros(num_connections, dtype=np.float64)
    measured_rounds = 0
    scale = np.empty(num_connections, dtype=np.float64)

    for round_index in range(config.rounds):
        # Cap each connection's aggregate offer at its demand (the NIC
        # rate); np.bincount accumulates in subflow order, matching the
        # reference's sequential per-connection sums bit-for-bit.
        window_total = np.bincount(conn, weights=cwnd, minlength=num_connections)
        positive = window_total > 0.0
        np.divide(demands, window_total, out=scale, where=positive)
        np.minimum(scale, 1.0, out=scale, where=positive)
        scale[~positive] = 0.0
        offers = cwnd * scale[conn]
        np.minimum(offers, sub_cap, out=offers)  # tcp8 even-striping cap

        # Offered load and delivery fraction per link (proportional drop).
        hop_offers = np.repeat(offers, hop_counts)
        link_offer = np.bincount(hop_links, weights=hop_offers, minlength=num_links)
        link_accept = np.ones(num_links, dtype=np.float64)
        congested = link_offer > link_capacity
        np.divide(link_capacity, link_offer, out=link_accept, where=congested)

        # Bottleneck accept per subflow: segmented minimum over hop slices.
        accept = np.minimum.reduceat(link_accept[hop_links], hop_starts)
        delivered = offers * accept
        lost = accept < LOSS_THRESHOLD

        goodput = np.bincount(conn, weights=delivered, minlength=num_connections)
        round_goodput[round_index] = goodput
        if round_index >= config.warmup_rounds:
            measured_rounds += 1
            measured_totals += goodput

        # Window update from the completed round's goodputs.
        if mptcp:
            # Coupled increase: grow in proportion to this subflow's share
            # of the connection's goodput, so growth shifts to the least
            # congested paths.
            denominator = np.where(goodput == 0.0, 1.0, goodput)
            increase = np.maximum(0.1, delivered / denominator[conn])
        else:
            increase = 1.0
        cwnd = np.where(
            lost, np.maximum(config.initial_cwnd, cwnd / 2.0), cwnd + increase
        )

    return round_goodput, measured_totals, measured_rounds


def _assemble_result(
    compiled: _CompiledSubflows,
    round_goodput: np.ndarray,
    measured_totals: np.ndarray,
    measured_rounds: int,
    config: AimdConfig,
) -> AimdResult:
    """Normalize goodputs into an :class:`AimdResult` (shared with the
    reference engine, so result assembly is identical by construction)."""
    reported = np.flatnonzero(compiled.demands > 0)
    throughputs: List[float] = []
    for connection in reported.tolist():
        if compiled.unreachable[connection]:
            # Degradation semantics: an unreachable pair carries nothing.
            throughputs.append(0.0)
        elif not compiled.has_subflows[connection]:
            # Same-rack traffic never crosses the network, always served.
            throughputs.append(1.0)
        elif measured_rounds == 0:
            throughputs.append(0.0)
        else:
            rate = measured_totals[connection] / measured_rounds
            throughputs.append(min(rate / compiled.demands[connection], 1.0))

    convergence = None
    trace = None
    if reported.size:
        # Normalized per-round trace over the reported connections; served
        # same-rack columns sit at 1.0 by definition, unreachable ones at 0.
        trace = round_goodput[:, reported] / compiled.demands[reported]
        served_locally = (
            ~compiled.has_subflows[reported] & ~compiled.unreachable[reported]
        )
        trace[:, served_locally] = 1.0
        convergence = measure_convergence_round(
            trace,
            config.warmup_rounds,
            tolerance=config.convergence_tolerance,
            window=config.convergence_window,
        )
    return AimdResult(
        flow_throughputs=throughputs,
        rounds=config.rounds,
        convergence_round=convergence,
        trace=trace if config.record_trace else None,
    )


def simulate_aimd(
    topology: Topology,
    traffic: Optional[TrafficMatrix] = None,
    config: Optional[AimdConfig] = None,
    rng: RngLike = None,
    path_set: Optional[PathSet] = None,
) -> AimdResult:
    """Run the round-based AIMD simulation and report normalized throughput.

    When ``path_set`` is not supplied, routes come from the content-hash
    shared path table (:func:`repro.routing.paths.shared_path_set`), so
    repeated simulations over one topology -- the dynamics sweeps' per-seed
    trials -- route each switch pair once.
    """
    rand = ensure_rng(rng)
    if config is None:
        config = AimdConfig()
    if traffic is None:
        traffic = random_permutation_traffic(topology, rng=rand)
    if len(traffic) == 0:
        return AimdResult()

    if path_set is None:
        arrays = traffic.as_switch_array(topology.csr().index_of)
        path_set = shared_path_set(
            topology.graph,
            arrays.pairs,
            scheme=config.routing,
            k=config.k,
            on_unreachable="skip",
        )

    with trace("aimd.compile", connections=len(traffic)) as span:
        compiled = _compile_subflows(topology, traffic, path_set, config, rand)
        span.add(
            subflows=compiled.num_subflows,
            links=int(compiled.link_capacity.shape[0]),
        )
    with trace(
        "aimd.rounds", rounds=config.rounds, subflows=compiled.num_subflows
    ):
        round_goodput, measured_totals, measured_rounds = _run_rounds(
            compiled, config
        )
    result = _assemble_result(
        compiled, round_goodput, measured_totals, measured_rounds, config
    )
    if result.convergence_round is not None:
        # Rounds-to-convergence as a domain counter on the enclosing span
        # (if any): visible in `repro stats` without a trace of its own.
        count("aimd.rounds_to_convergence", result.convergence_round)
    return result
