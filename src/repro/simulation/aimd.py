"""Round-based AIMD (TCP / MPTCP) simulator.

A dynamic counterpart to the steady-state fluid model in
:mod:`repro.simulation.fluid`: congestion windows evolve round by round
(one round approximates one RTT) with additive increase and multiplicative
decrease, and MPTCP subflows use a coupled ("linked increases"-style)
controller that shifts window growth toward less congested paths.  It is a
deliberately small model of the MPTCP authors' packet simulator (see
DESIGN.md, substitution 2), used to cross-validate the fluid results and to
study convergence dynamics.

Model per round:

1. every subflow offers ``cwnd`` packets along its fixed path;
2. every directed link can carry ``capacity * packets_per_round`` packets;
   if offers exceed capacity, the excess is dropped proportionally to each
   subflow's offer (drop-tail approximation);
3. subflows that lost packets halve their window; others grow -- plain TCP
   subflows by one packet, MPTCP subflows by an amount weighted toward the
   subflows of the same connection that currently deliver the most goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.routing.paths import PathSet, build_path_set
from repro.simulation.fluid import (
    MPTCP,
    TCP_EIGHT_FLOWS,
    TCP_ONE_FLOW,
    SimulationConfig,
)
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix, random_permutation_traffic
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.stats import jains_fairness_index, mean

DirectedLink = Tuple[Hashable, Hashable]


@dataclass(frozen=True)
class AimdConfig:
    """Parameters of the round-based simulator."""

    routing: str = "ksp"
    k: int = 8
    congestion_control: str = MPTCP
    subflows: int = 8
    rounds: int = 200
    warmup_rounds: int = 50
    packets_per_round: int = 100
    initial_cwnd: float = 2.0

    def to_simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            routing=self.routing,
            k=self.k,
            congestion_control=self.congestion_control,
            subflows=self.subflows,
        )


@dataclass
class _Subflow:
    connection: int
    path: Tuple[Hashable, ...]
    cwnd: float
    delivered: float = 0.0
    last_goodput: float = 0.0


@dataclass
class AimdResult:
    """Per-connection normalized throughput measured after warm-up."""

    flow_throughputs: List[float] = field(default_factory=list)
    rounds: int = 0

    @property
    def average_throughput(self) -> float:
        if not self.flow_throughputs:
            return 1.0
        return mean(self.flow_throughputs)

    @property
    def fairness(self) -> float:
        if not self.flow_throughputs:
            return 1.0
        return jains_fairness_index(self.flow_throughputs)


def _link_capacities(topology: Topology, packets_per_round: int) -> Dict[DirectedLink, float]:
    capacities: Dict[DirectedLink, float] = {}
    for u, v, data in topology.graph.edges(data=True):
        capacity = float(data.get("capacity", 1.0)) * packets_per_round
        capacities[(u, v)] = capacity
        capacities[(v, u)] = capacity
    return capacities


def _build_subflows(
    traffic: TrafficMatrix,
    path_set: PathSet,
    config: AimdConfig,
    rand,
) -> Tuple[List[_Subflow], List[float]]:
    """Create subflows and per-connection demand caps (in packets/round)."""
    subflows: List[_Subflow] = []
    demands: List[float] = []
    for index, demand in enumerate(traffic):
        src, dst = demand.source_switch, demand.destination_switch
        demands.append(demand.rate * config.packets_per_round)
        if src == dst:
            continue  # same-rack traffic never crosses the network
        options = path_set.get((src, dst))
        if not options:
            raise ValueError(f"no path for demanded pair ({src!r}, {dst!r})")
        if config.congestion_control == TCP_ONE_FLOW:
            chosen = options[rand.randrange(len(options))]
            subflows.append(_Subflow(index, chosen, config.initial_cwnd))
        else:
            for i in range(config.subflows):
                path = options[i % len(options)]
                subflows.append(_Subflow(index, path, config.initial_cwnd))
    return subflows, demands


def simulate_aimd(
    topology: Topology,
    traffic: Optional[TrafficMatrix] = None,
    config: Optional[AimdConfig] = None,
    rng: RngLike = None,
    path_set: Optional[PathSet] = None,
) -> AimdResult:
    """Run the round-based AIMD simulation and report normalized throughput."""
    rand = ensure_rng(rng)
    if config is None:
        config = AimdConfig()
    if traffic is None:
        traffic = random_permutation_traffic(topology, rng=rand)
    if len(traffic) == 0:
        return AimdResult()

    pairs = list(traffic.switch_pairs())
    if path_set is None:
        path_set = build_path_set(
            topology.graph, pairs, scheme=config.routing, k=config.k
        )

    subflows, demands = _build_subflows(traffic, path_set, config, rand)
    capacities = _link_capacities(topology, config.packets_per_round)

    siblings_of: Dict[int, List[_Subflow]] = {}
    for subflow in subflows:
        siblings_of.setdefault(subflow.connection, []).append(subflow)

    measured_rounds = 0
    delivered_per_connection = [0.0] * len(demands)

    for round_index in range(config.rounds):
        # Cap each connection's aggregate offer at its demand (the NIC rate).
        offers: List[float] = []
        per_connection_window: Dict[int, float] = {}
        for subflow in subflows:
            per_connection_window[subflow.connection] = (
                per_connection_window.get(subflow.connection, 0.0) + subflow.cwnd
            )
        for subflow in subflows:
            total = per_connection_window[subflow.connection]
            cap = demands[subflow.connection]
            scale = min(1.0, cap / total) if total > 0 else 0.0
            offers.append(subflow.cwnd * scale)

        # Offered load per link.
        link_offer: Dict[DirectedLink, float] = {}
        for subflow, offer in zip(subflows, offers):
            for link in zip(subflow.path, subflow.path[1:]):
                link_offer[link] = link_offer.get(link, 0.0) + offer

        # Delivery fraction per link (proportional drop when oversubscribed).
        link_accept: Dict[DirectedLink, float] = {}
        for link, offer in link_offer.items():
            capacity = capacities.get(link, config.packets_per_round)
            link_accept[link] = 1.0 if offer <= capacity else capacity / offer

        measuring = round_index >= config.warmup_rounds
        if measuring:
            measured_rounds += 1

        for slot, (subflow, offer) in enumerate(zip(subflows, offers)):
            accept = 1.0
            for link in zip(subflow.path, subflow.path[1:]):
                accept = min(accept, link_accept[link])
            delivered = offer * accept
            lost = accept < 1.0 - 1e-9
            subflow.last_goodput = delivered
            if measuring:
                delivered_per_connection[subflow.connection] += delivered

            if lost:
                subflow.cwnd = max(config.initial_cwnd, subflow.cwnd / 2.0)
            else:
                if config.congestion_control == MPTCP:
                    # Coupled increase: grow in proportion to this subflow's
                    # share of the connection's goodput, so growth shifts to
                    # the least congested paths.
                    siblings = siblings_of[subflow.connection]
                    total_goodput = sum(s.last_goodput for s in siblings) or 1.0
                    subflow.cwnd += max(
                        0.1, subflow.last_goodput / total_goodput
                    )
                else:
                    subflow.cwnd += 1.0

    throughputs = []
    for connection, demand in enumerate(demands):
        if demand <= 0:
            continue
        if connection not in siblings_of:
            # Same-rack traffic never crosses the network and is always served.
            throughputs.append(1.0)
            continue
        if measured_rounds == 0:
            throughputs.append(0.0)
            continue
        rate = delivered_per_connection[connection] / measured_rounds
        throughputs.append(min(rate / demand, 1.0))
    return AimdResult(flow_throughputs=throughputs, rounds=config.rounds)
