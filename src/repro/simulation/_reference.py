"""Scalar reference for the round-based AIMD simulator.

This is the dict-of-links round loop that :mod:`repro.simulation.aimd`
vectorized, retained -- like :mod:`repro.flow._reference` and
:mod:`repro.routing._reference` -- as the semantic pin for the parity suite
(``tests/test_aimd_parity.py``) and the benchmark trajectory
(``benchmarks/record_sim.py``).  It is never imported by production code
paths.

Two deliberate model fixes distinguish it from the pre-vectorization loop
(both are mirrored by the kernel, which is pinned bit-identical to this
implementation):

* **TCP-8-flows striping cap** -- the fluid model caps each tcp8 connection
  at ``demand / subflows`` per subflow (the application stripes data
  evenly); the historical AIMD loop applied no per-subflow cap, so tcp8
  results were not comparable across the two simulators.  The cap is now
  enforced on every tcp8 subflow's offer.
* **Two-phase window update** -- the historical loop updated windows while
  iterating subflows, so an MPTCP subflow's coupled increase mixed the
  current round's goodput (already-visited siblings) with the previous
  round's (not-yet-visited siblings), an artifact of in-place iteration
  order.  Rounds are now two-phase: every delivery is computed first, then
  every window updates from the completed round's goodputs.

Accumulation orders are chosen to match the vectorized engine exactly:
per-connection sums accumulate in subflow order (``np.bincount`` iterates
its input sequentially), per-link offered load in subflow-major hop order,
and the measured per-connection totals add one completed-round total per
round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.routing.paths import PathSet, build_path_set
from repro.simulation.aimd import (
    LOSS_THRESHOLD,
    AimdConfig,
    AimdResult,
    measure_convergence_round,
)
from repro.simulation.capacity import link_capacities
from repro.simulation.fluid import MPTCP, TCP_EIGHT_FLOWS, TCP_ONE_FLOW
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix, random_permutation_traffic
from repro.utils.rng import RngLike, ensure_rng

DirectedLink = Tuple[Hashable, Hashable]


@dataclass
class _Subflow:
    connection: int
    path: Tuple[Hashable, ...]
    cwnd: float
    cap: float = float("inf")


def _build_subflows_reference(
    traffic: TrafficMatrix,
    path_set: PathSet,
    config: AimdConfig,
    rand,
) -> Tuple[List[_Subflow], List[float], set]:
    """Create subflows, per-connection demand caps, and unreachable indices.

    A pair absent from a skip-mode path set is unreachable (the topology is
    partitioned): it produces no subflows and its index lands in the
    returned set so result assembly reports it at exactly 0.0, mirroring
    the vectorized engine's degradation semantics.
    """
    subflows: List[_Subflow] = []
    demands: List[float] = []
    unreachable: set = set()
    for index, demand in enumerate(traffic):
        src, dst = demand.source_switch, demand.destination_switch
        demand_pkts = demand.rate * config.packets_per_round
        demands.append(demand_pkts)
        if src == dst:
            continue  # same-rack traffic never crosses the network
        options = path_set.get((src, dst))
        if not options:
            unreachable.add(index)
            continue
        if config.congestion_control == TCP_ONE_FLOW:
            chosen = options[rand.randrange(len(options))]
            subflows.append(_Subflow(index, chosen, config.initial_cwnd))
        else:
            cap = (
                demand_pkts / config.subflows
                if config.congestion_control == TCP_EIGHT_FLOWS
                else float("inf")
            )
            for i in range(config.subflows):
                path = options[i % len(options)]
                subflows.append(_Subflow(index, path, config.initial_cwnd, cap))
    return subflows, demands, unreachable


def simulate_aimd_reference(
    topology: Topology,
    traffic: Optional[TrafficMatrix] = None,
    config: Optional[AimdConfig] = None,
    rng: RngLike = None,
    path_set: Optional[PathSet] = None,
) -> AimdResult:
    """Scalar round-based AIMD simulation (the vectorized engine's pin)."""
    rand = ensure_rng(rng)
    if config is None:
        config = AimdConfig()
    if traffic is None:
        traffic = random_permutation_traffic(topology, rng=rand)
    if len(traffic) == 0:
        return AimdResult()

    pairs = list(traffic.switch_pairs())
    if path_set is None:
        path_set = build_path_set(
            topology.graph,
            pairs,
            scheme=config.routing,
            k=config.k,
            on_unreachable="skip",
        )

    subflows, demands, unreachable = _build_subflows_reference(
        traffic, path_set, config, rand
    )
    capacities = link_capacities(topology, scale=config.packets_per_round)
    mptcp = config.congestion_control == MPTCP
    num_connections = len(demands)

    measured_rounds = 0
    delivered_per_connection = [0.0] * num_connections
    round_goodputs: List[List[float]] = []

    for round_index in range(config.rounds):
        # Phase 1: offers.  Cap each connection's aggregate offer at its
        # demand (the NIC rate); tcp8 subflows are additionally capped at
        # their even-striping share.
        window_total: Dict[int, float] = {}
        for subflow in subflows:
            window_total[subflow.connection] = (
                window_total.get(subflow.connection, 0.0) + subflow.cwnd
            )
        offers: List[float] = []
        for subflow in subflows:
            total = window_total[subflow.connection]
            cap = demands[subflow.connection]
            scale = min(1.0, cap / total) if total > 0 else 0.0
            offers.append(min(subflow.cwnd * scale, subflow.cap))

        # Phase 2: offered load and delivery fraction per link.
        link_offer: Dict[DirectedLink, float] = {}
        for subflow, offer in zip(subflows, offers):
            for link in zip(subflow.path, subflow.path[1:]):
                link_offer[link] = link_offer.get(link, 0.0) + offer
        link_accept: Dict[DirectedLink, float] = {}
        default_capacity = float(config.packets_per_round)
        for link, offer in link_offer.items():
            capacity = capacities.get(link, default_capacity)
            link_accept[link] = 1.0 if offer <= capacity else capacity / offer

        # Phase 3: deliveries and the round's per-connection goodput.
        delivered: List[float] = []
        lost: List[bool] = []
        for subflow, offer in zip(subflows, offers):
            accept = 1.0
            for link in zip(subflow.path, subflow.path[1:]):
                accept = min(accept, link_accept[link])
            delivered.append(offer * accept)
            lost.append(accept < LOSS_THRESHOLD)
        goodput: Dict[int, float] = {}
        for subflow, amount in zip(subflows, delivered):
            goodput[subflow.connection] = (
                goodput.get(subflow.connection, 0.0) + amount
            )
        round_goodputs.append(
            [goodput.get(connection, 0.0) for connection in range(num_connections)]
        )
        if round_index >= config.warmup_rounds:
            measured_rounds += 1
            for connection in range(num_connections):
                delivered_per_connection[connection] += goodput.get(connection, 0.0)

        # Phase 4: window updates from the completed round's goodputs.
        for subflow, amount, was_lost in zip(subflows, delivered, lost):
            if was_lost:
                subflow.cwnd = max(config.initial_cwnd, subflow.cwnd / 2.0)
            elif mptcp:
                # Coupled increase: grow in proportion to this subflow's
                # share of the connection's goodput, so growth shifts to
                # the least congested paths.
                total = goodput.get(subflow.connection, 0.0) or 1.0
                subflow.cwnd += max(0.1, amount / total)
            else:
                subflow.cwnd += 1.0

    # Result assembly (mirrors repro.simulation.aimd._assemble_result).
    crossing = {subflow.connection for subflow in subflows}
    throughputs: List[float] = []
    reported: List[int] = []
    for connection, demand in enumerate(demands):
        if demand <= 0:
            continue
        reported.append(connection)
        if connection in unreachable:
            # Degradation semantics: an unreachable pair carries nothing.
            throughputs.append(0.0)
        elif connection not in crossing:
            # Same-rack traffic never crosses the network, always served.
            throughputs.append(1.0)
        elif measured_rounds == 0:
            throughputs.append(0.0)
        else:
            rate = delivered_per_connection[connection] / measured_rounds
            throughputs.append(min(rate / demands[connection], 1.0))

    convergence = None
    trace = None
    if reported:
        matrix = np.asarray(round_goodputs, dtype=np.float64)[:, reported]
        trace = matrix / np.asarray(
            [demands[connection] for connection in reported], dtype=np.float64
        )
        for column, connection in enumerate(reported):
            if connection not in crossing and connection not in unreachable:
                trace[:, column] = 1.0
        convergence = measure_convergence_round(
            trace,
            config.warmup_rounds,
            tolerance=config.convergence_tolerance,
            window=config.convergence_window,
        )
    return AimdResult(
        flow_throughputs=throughputs,
        rounds=config.rounds,
        convergence_round=convergence,
        trace=trace if config.record_trace else None,
    )
