"""Simulators that account for routing and congestion control (paper Section 5)."""

from repro.simulation.capacity import clear_capacity_cache, link_capacities
from repro.simulation.fluid import FluidResult, SimulationConfig, simulate_fluid
from repro.simulation.aimd import (
    AimdConfig,
    AimdResult,
    measure_convergence_round,
    simulate_aimd,
)

__all__ = [
    "FluidResult",
    "SimulationConfig",
    "simulate_fluid",
    "AimdConfig",
    "AimdResult",
    "measure_convergence_round",
    "simulate_aimd",
    "link_capacities",
    "clear_capacity_cache",
]
