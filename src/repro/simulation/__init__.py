"""Simulators that account for routing and congestion control (paper Section 5)."""

from repro.simulation.fluid import FluidResult, SimulationConfig, simulate_fluid
from repro.simulation.aimd import AimdConfig, AimdResult, simulate_aimd

__all__ = [
    "FluidResult",
    "SimulationConfig",
    "simulate_fluid",
    "AimdConfig",
    "AimdResult",
    "simulate_aimd",
]
