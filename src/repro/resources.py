"""Resource governor: execution profiles and per-point memory budgets.

Two halves, both stdlib-only so every layer (engine, graph kernels, chaos
harness) can import them without cycles:

**Execution profiles** -- a :class:`ExecutionProfile` describes how much
fidelity a scenario point should spend: scratch/memo byte-budget scales for
the streaming BFS kernels, whether exact kernels should switch to the
sampled estimators, and a trial/source scale for the estimators themselves.
:data:`PROFILE_LADDER` orders the profiles from full fidelity (rung 0) to
the cheapest honest mode (rung ``MAX_DEGRADATION_LEVEL``); the supervised
runner walks one rung down each time a point fails on *resource exhaustion*
(``oom`` / ``signal`` / ``timeout``) instead of retrying the identical
computation.  A profile is activated around a point's execution with
:func:`activate_profile`; budget-aware kernels read it back through
:func:`active_profile`.  Rung selection is a pure function of the failure
history, and every knob a profile turns is deterministic, so the same seed
plus the same faults reproduce the same rung sequence and bit-identical
degraded values.

**Memory budgets** -- :func:`apply_memory_budget` caps the calling process's
address space with a ``RLIMIT_AS`` *soft* limit of "what is currently
mapped, plus the per-point budget, plus a safety margin", so an overrun
raises a catchable :class:`MemoryError` inside the worker instead of
drawing the kernel OOM killer.  The budget comes from ``--memory-mb``,
``$REPRO_MEMORY_MB`` (:func:`default_memory_mb`) or
``SweepDef.memory_mb``.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Callable, Iterator, Optional

#: Environment variable supplying a default per-point memory budget (MB).
MEMORY_MB_ENV = "REPRO_MEMORY_MB"

#: Headroom added above the measured baseline address space when applying a
#: budget, so the worker itself (pickling results, formatting the failure)
#: never dies of its own bookkeeping.
MEMORY_SAFETY_MARGIN_BYTES = 32 * 1024 * 1024

#: Failure kinds that represent resource exhaustion: retrying the identical
#: computation is pointless, so the runner escalates the degradation ladder.
RESOURCE_FAULT_KINDS = ("oom", "signal", "timeout")

#: Deepest rung of the degradation ladder.
MAX_DEGRADATION_LEVEL = 3

#: Floor for planned source samples: degrading never pushes a sample that
#: had at least this many sources below it (estimates stay meaningful).
MIN_PLANNED_SOURCES = 16

#: Seed used when a degraded profile demotes an exact kernel to a sampled
#: estimate -- fixed, so the demotion is a pure function of the graph.
PROFILE_SAMPLE_SEED = 0


@dataclass(frozen=True)
class ExecutionProfile:
    """One rung of the degradation ladder (frozen, JSON-friendly).

    ``bfs_scratch_scale`` / ``dist_memo_scale`` multiply the streaming-BFS
    scratch budget and the global distance-row memo budget; ``sampled``
    switches exact path-length kernels to the sampled estimators (with
    their recorded confidence intervals); ``trial_scale`` shrinks
    trial/source counts requested from the estimators.  Rung 0 is full
    fidelity: every scale is 1.0 and ``sampled`` is off.
    """

    level: int = 0
    bfs_scratch_scale: float = 1.0
    dist_memo_scale: float = 1.0
    sampled: bool = False
    trial_scale: float = 1.0

    def as_dict(self) -> dict:
        return asdict(self)

    def scale_bytes(self, budget_bytes: int, scale: float) -> int:
        """Apply one of the byte-budget scales (floored at 1 byte)."""
        if scale >= 1.0:
            return int(budget_bytes)
        return max(1, int(budget_bytes * scale))

    def plan_sources(self, num_nodes: int, requested: Optional[int]) -> Optional[int]:
        """The source-sample size this profile allows.

        ``requested`` of ``None`` (or >= ``num_nodes``) means "exact"; a
        ``sampled`` profile demotes that to a deterministic minority sample
        (a quarter of the nodes, at least 64, always below ``num_nodes``).
        ``trial_scale`` then shrinks any sampled request, floored at
        ``min(MIN_PLANNED_SOURCES, requested)`` so tiny samples survive.
        The result never exceeds the original request.
        """
        if self.sampled and (requested is None or requested >= num_nodes):
            demoted = min(num_nodes - 1, max(64, num_nodes // 4))
            if demoted >= 1:
                requested = demoted
        if requested is None:
            return None
        if self.trial_scale < 1.0:
            requested = max(
                min(MIN_PLANNED_SOURCES, requested),
                int(requested * self.trial_scale),
            )
        return requested

    def plan_trials(self, trials: int) -> int:
        """The trial count this profile allows (never below 1)."""
        if self.trial_scale >= 1.0:
            return trials
        return max(1, int(trials * self.trial_scale))


#: The ladder, full fidelity first.  Rung 1 halves the streaming-BFS scratch
#: and distance-memo budgets; rung 2 additionally switches exact kernels to
#: the sampled estimators; rung 3 additionally halves trial/source counts.
PROFILE_LADDER = (
    ExecutionProfile(level=0),
    ExecutionProfile(level=1, bfs_scratch_scale=0.5, dist_memo_scale=0.5),
    ExecutionProfile(
        level=2, bfs_scratch_scale=0.5, dist_memo_scale=0.5, sampled=True
    ),
    ExecutionProfile(
        level=3,
        bfs_scratch_scale=0.5,
        dist_memo_scale=0.5,
        sampled=True,
        trial_scale=0.5,
    ),
)

assert len(PROFILE_LADDER) == MAX_DEGRADATION_LEVEL + 1
assert all(profile.level == rung for rung, profile in enumerate(PROFILE_LADDER))


def profile_for_level(level: int) -> ExecutionProfile:
    """The ladder rung for ``level``, clamped to the ladder's range."""
    return PROFILE_LADDER[max(0, min(int(level), MAX_DEGRADATION_LEVEL))]


_ACTIVE_PROFILE: ExecutionProfile = PROFILE_LADDER[0]


def active_profile() -> ExecutionProfile:
    """The profile governing the current execution (rung 0 by default)."""
    return _ACTIVE_PROFILE


@contextmanager
def activate_profile(
    profile: Optional[ExecutionProfile],
) -> Iterator[ExecutionProfile]:
    """Install ``profile`` (``None`` = full fidelity) for the ``with`` body.

    The previous profile is restored on exit, so nested activations and
    serial in-process sweeps cannot leak a degraded profile into later
    points.
    """
    global _ACTIVE_PROFILE
    previous = _ACTIVE_PROFILE
    _ACTIVE_PROFILE = profile if profile is not None else PROFILE_LADDER[0]
    try:
        yield _ACTIVE_PROFILE
    finally:
        _ACTIVE_PROFILE = previous


# --------------------------------------------------------------------------- #
# Memory budgets (RLIMIT_AS soft caps)
# --------------------------------------------------------------------------- #
def default_memory_mb() -> Optional[float]:
    """The ``$REPRO_MEMORY_MB`` budget, or ``None`` when unset/invalid."""
    raw = os.environ.get(MEMORY_MB_ENV)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def current_address_space_bytes() -> Optional[int]:
    """This process's mapped address space (``None`` where unmeasurable).

    Reads ``/proc/self/statm`` (Linux); the budget machinery degrades to a
    no-op elsewhere rather than guessing a baseline and starving the
    interpreter.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[0])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def memory_budget_bytes(memory_mb: float) -> Optional[int]:
    """Address-space cap enforcing a per-point budget of ``memory_mb``.

    ``RLIMIT_AS`` covers the whole address space -- interpreter, numpy and
    all -- so the cap is *current usage* plus the budget plus
    :data:`MEMORY_SAFETY_MARGIN_BYTES`, making ``memory_mb`` mean "what
    this point may allocate", not "total VSZ".  ``None`` when the baseline
    cannot be measured.
    """
    baseline = current_address_space_bytes()
    if baseline is None:
        return None
    return baseline + int(memory_mb * 1024 * 1024) + MEMORY_SAFETY_MARGIN_BYTES


def apply_memory_budget(memory_mb: float) -> Optional[Callable[[], None]]:
    """Cap this process's address space; returns a restore callable.

    Sets the ``RLIMIT_AS`` *soft* limit (the hard limit is untouched, so
    the cap can be raised back) and returns a function restoring the
    previous soft limit -- call it before sending results, so pickling a
    large value can never itself die of the point's budget.  Returns
    ``None`` when the platform cannot enforce the budget (no ``resource``
    module, unmeasurable baseline, or ``setrlimit`` refusal); callers
    treat that as "budget unenforced", never as an error.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix platforms
        return None
    budget = memory_budget_bytes(memory_mb)
    if budget is None:
        return None
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    except (OSError, ValueError):  # pragma: no cover - exotic kernels
        return None
    if hard != resource.RLIM_INFINITY:
        budget = min(budget, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (budget, hard))
    except (OSError, ValueError):  # pragma: no cover - refused by kernel
        return None

    def restore() -> None:
        try:
            resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
        except (OSError, ValueError):  # pragma: no cover
            pass

    return restore
