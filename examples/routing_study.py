#!/usr/bin/env python3
"""Routing study: why ECMP wastes a random graph and k-shortest paths fix it.

Reproduces the Section 5 story on a small Jellyfish: count how many distinct
paths each link carries under 8-way ECMP vs 8-shortest-path routing (Fig 9),
then measure the throughput each scheme delivers with different congestion
controls (Table 1), including the round-based AIMD simulator as a
cross-check of the fluid model.

Run with:  python examples/routing_study.py
"""

from repro import JellyfishTopology, random_permutation_traffic
from repro.routing.diversity import fraction_links_at_or_below, link_path_counts
from repro.routing.paths import build_path_set
from repro.simulation.aimd import AimdConfig, simulate_aimd
from repro.simulation.fluid import SimulationConfig, simulate_fluid


def main() -> None:
    topology = JellyfishTopology.build(40, 10, 6, rng=0)
    traffic = random_permutation_traffic(topology, rng=1)
    pairs = list(traffic.switch_pairs())
    total_directed_links = 2 * topology.num_links

    print("== path diversity (Fig 9) ==")
    for label, scheme, width in [("8-way ECMP", "ecmp", 8),
                                 ("64-way ECMP", "ecmp", 64),
                                 ("8-shortest paths", "ksp", 8)]:
        path_set = build_path_set(topology.graph, pairs, scheme=scheme, k=width)
        counts = link_path_counts(
            path for options in path_set.paths.values() for path in options
        )
        starved = fraction_links_at_or_below(counts, 2, total_directed_links)
        print(f"  {label:<18} links carrying <=2 paths: {starved:.0%}")

    print("\n== throughput under routing x congestion control (Table 1) ==")
    for routing in ("ecmp", "ksp"):
        for control in ("tcp1", "tcp8", "mptcp"):
            config = SimulationConfig(routing=routing, k=8, congestion_control=control)
            result = simulate_fluid(topology, traffic, config, rng=2)
            print(f"  {routing:<5} + {control:<6} average throughput "
                  f"{result.average_throughput:.3f}  (fairness {result.fairness:.3f})")

    print("\n== AIMD (round-based) cross-check ==")
    aimd = simulate_aimd(
        topology, traffic,
        AimdConfig(routing="ksp", k=8, congestion_control="mptcp",
                   rounds=200, warmup_rounds=80),
        rng=3,
    )
    print(f"  ksp + mptcp AIMD average throughput {aimd.average_throughput:.3f}")


if __name__ == "__main__":
    main()
