#!/usr/bin/env python3
"""Cabling planner for a small cluster and a containerized deployment.

Covers Section 6 of the paper: place the switch cluster at the centre of the
floor, count cables and their lengths, check how many runs need optical
transceivers, and evaluate how much throughput a container deployment gives
up when most random links are kept inside the container (Fig 14).

Run with:  python examples/cabling_planner.py
"""

from repro import FatTreeTopology, JellyfishTopology, normalized_throughput
from repro.cabling.containers import (
    build_localized_jellyfish,
    fattree_local_link_fraction,
    local_link_fraction,
)
from repro.cabling.layout import FloorPlan


def small_cluster() -> None:
    print("== small cluster: switch-cluster layout (Section 6.2) ==")
    fattree = FatTreeTopology.build(6)
    jellyfish = JellyfishTopology.from_equipment(
        fattree.num_switches, 6, fattree.num_servers, rng=0
    )
    plan = FloorPlan(num_racks=fattree.num_switches, rack_pitch_m=1.2)
    for name, topology in [("fat-tree", fattree), ("jellyfish", jellyfish)]:
        report = plan.report(topology)
        print(f"  {name:<9} cables: {report.total_cables:>4} "
              f"(switch-switch {report.switch_to_switch_cables}, "
              f"server {report.server_to_switch_cables}); "
              f"optical: {report.num_optical}; "
              f"total cost ${report.total_cost:,.0f}")
    comparison = plan.compare(jellyfish, fattree)
    print(f"  jellyfish/fat-tree cable count ratio: "
          f"{comparison['cable_count_ratio']:.2f}")


def containerized() -> None:
    print("\n== containerized deployment: localized links (Fig 14) ==")
    containers, per_container = 4, 10
    unrestricted = JellyfishTopology.build(
        containers * per_container, 10, 6, rng=1, servers_per_switch=4
    )
    baseline = normalized_throughput(unrestricted, engine="path", k=8, rng=1).normalized
    print(f"  unrestricted jellyfish throughput: {baseline:.3f}")
    print(f"  fat-tree in-pod link fraction (k=10): "
          f"{fattree_local_link_fraction(10):.2f}")
    for fraction in (0.2, 0.4, 0.6, 0.8):
        localized = build_localized_jellyfish(
            num_containers=containers,
            switches_per_container=per_container,
            ports_per_switch=10,
            network_degree=6,
            servers_per_switch=4,
            local_fraction=fraction,
            rng=2,
        )
        value = normalized_throughput(localized, engine="path", k=8, rng=2).normalized
        print(f"  local fraction {local_link_fraction(localized):.2f}: "
              f"throughput {value:.3f} "
              f"({value / baseline:.0%} of unrestricted)")


if __name__ == "__main__":
    small_cluster()
    containerized()
