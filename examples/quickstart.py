#!/usr/bin/env python3
"""Quickstart: build a Jellyfish, compare it with a fat-tree, route traffic.

Run with:  python examples/quickstart.py
"""

from repro import (
    FatTreeTopology,
    JellyfishTopology,
    SimulationConfig,
    normalized_throughput,
    random_permutation_traffic,
    simulate_fluid,
)


def main() -> None:
    # 1. A fat-tree built from 6-port switches fixes the equipment pool:
    #    45 switches, 54 servers, full bisection bandwidth.
    fattree = FatTreeTopology.build(6)
    print(f"fat-tree      : {fattree.num_switches} switches, "
          f"{fattree.num_servers} servers, {fattree.num_links} links")

    # 2. A Jellyfish from the *same* equipment: random regular graph among
    #    the top-of-rack switches, every spare port used for the network.
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=6,
        num_servers=fattree.num_servers,
        rng=0,
    )
    print(f"jellyfish     : {jellyfish.num_switches} switches, "
          f"{jellyfish.num_servers} servers, {jellyfish.num_links} links")

    # 3. Paths are shorter on the random graph -- that is where the capacity
    #    advantage comes from (Fig 1).
    print(f"mean path     : fat-tree {fattree.switch_average_path_length():.2f} hops, "
          f"jellyfish {jellyfish.switch_average_path_length():.2f} hops")

    # 4. Optimal-routing throughput under random-permutation traffic.
    traffic = random_permutation_traffic(jellyfish, rng=1)
    optimal = normalized_throughput(jellyfish, traffic, engine="path", k=8)
    print(f"LP throughput : {optimal.normalized:.3f} "
          f"(theta = {optimal.theta:.3f}, full capacity = {optimal.supports_full_capacity()})")

    # 5. What a real deployment would see: 8-shortest-path routing + MPTCP.
    config = SimulationConfig(routing="ksp", k=8, congestion_control="mptcp")
    simulated = simulate_fluid(jellyfish, traffic, config, rng=2)
    print(f"ksp + MPTCP   : average throughput {simulated.average_throughput:.3f}, "
          f"Jain fairness {simulated.fairness:.3f}")


if __name__ == "__main__":
    main()
