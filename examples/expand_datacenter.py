#!/usr/bin/env python3
"""Incrementally grow a Jellyfish data center, one rack at a time.

This is the workload the paper's introduction motivates: a data center that
doubles its server count in small increments (Facebook-style growth) without
replacing switches or losing capacity.  The script grows a network rack by
rack, tracks path lengths and throughput, and prices each step with the cost
model.

Run with:  python examples/expand_datacenter.py
"""

from repro import JellyfishTopology, normalized_throughput
from repro.expansion.cost import CostModel
from repro.graphs.properties import average_path_length, diameter


def main() -> None:
    ports = 12
    servers_per_rack = 4
    network_degree = ports - servers_per_rack
    cost_model = CostModel()

    # Start with a 20-rack pod.
    topology = JellyfishTopology.build(
        20, ports, network_degree, rng=0, servers_per_switch=servers_per_rack
    )
    print(f"initial network: {topology.num_switches} racks, "
          f"{topology.num_servers} servers")

    total_cost = 0.0
    print(f"{'racks':>6} {'servers':>8} {'mean path':>10} {'diameter':>9} "
          f"{'throughput':>11} {'step cost $':>12}")
    for step in range(1, 21):
        rack_id = ("rack", 20 + step)
        topology.add_rack(rack_id, ports, servers=servers_per_rack, rng=step)

        # Each pair of new network ports moves one existing cable.
        moved = topology.rewired_links_for_expansion(network_degree)
        step_cost = cost_model.expansion_cost(
            new_switch_ports=ports,
            new_cables=network_degree + servers_per_rack,
            cables_moved=moved,
        )
        total_cost += step_cost

        if step % 4 == 0:
            throughput = normalized_throughput(
                topology, engine="path", k=8, rng=step
            ).normalized
            print(f"{topology.num_switches:>6} {topology.num_servers:>8} "
                  f"{average_path_length(topology.graph):>10.2f} "
                  f"{diameter(topology.graph):>9} "
                  f"{throughput:>11.3f} {step_cost:>12.0f}")

    print(f"\ngrew from 80 to {topology.num_servers} servers for "
          f"${total_cost:,.0f} without touching the original switches.")


if __name__ == "__main__":
    main()
