"""Setup shim for environments without the `wheel` package (offline installs).

All project metadata lives in pyproject.toml; setuptools >= 61 reads it from
there.  This file only enables the legacy editable-install path
(`pip install -e . --no-use-pep517`) which does not require building a wheel.
"""

from setuptools import setup

setup()
