"""Record the lifecycle-engine perf trajectory: incremental vs cold rebuild.

Drives the same seeded 1000-event lifecycle through both metric backends
(:class:`repro.lifecycle.metrics.IncrementalMetrics` and the cold-rebuild
reference in :mod:`repro.lifecycle._reference`), asserts their metric
trajectories are identical float-for-float, and writes
``benchmarks/BENCH_lifecycle.json``.  Run it after touching anything under
``repro.lifecycle``:

    PYTHONPATH=src python benchmarks/record_lifecycle.py            # full (~30 s)
    PYTHONPATH=src python benchmarks/record_lifecycle.py --quick    # small scenario

A ``--quick`` run prints the comparison but refuses to overwrite the
committed snapshot (pass ``--output`` explicitly to write one), so the
1000-event acceptance row never vanishes silently.

Cases:

* ``lifecycle_1000_events`` -- the acceptance row: a 1000-event
  failure/repair lifecycle over a 128-switch Jellyfish with periodic
  traffic epochs (ECMP routing, fixed tracked workload); the incremental
  backend must come in >= 5x faster than the cold rebuild;
* ``lifecycle_200_events`` -- a smaller scenario (64 switches) used by
  ``--quick`` and mirrored by the pytest-benchmark rows.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.graphs.csr import clear_csr_cache
from repro.lifecycle import LifecycleConfig, run_lifecycle
from repro.routing.paths import clear_shared_path_sets
from repro.simulation.capacity import clear_capacity_cache
from repro.telemetry.manifest import peak_rss_kb
from repro.telemetry.timing import best_of
from repro.topologies.jellyfish import JellyfishTopology

OUTPUT = Path(__file__).resolve().parent / "BENCH_lifecycle.json"

#: The acceptance scenario: ~1000 events (Poisson link/switch churn at a
#: few failures per simulated day), an ECMP traffic epoch every 130 h, one
#: tracked workload (``traffic="fixed"``, which is what makes revisited
#: states memoizable).  No expansion: both backends must see identical
#: plants for the parity assert to be float-exact.
FULL_CONFIG = LifecycleConfig(
    duration_hours=2600.0,
    link_failure_rate=0.45,
    switch_failure_rate=0.045,
    link_mttr_hours=1.0,
    switch_mttr_hours=2.0,
    epoch_interval_hours=130.0,
    max_events=1000,
    routing="ecmp",
    k=4,
    congestion_control="tcp1",
    traffic="fixed",
)

QUICK_CONFIG = LifecycleConfig(
    duration_hours=650.0,
    link_failure_rate=0.45,
    switch_failure_rate=0.045,
    link_mttr_hours=1.0,
    switch_mttr_hours=2.0,
    epoch_interval_hours=130.0,
    max_events=200,
    routing="ecmp",
    k=4,
    congestion_control="tcp1",
    traffic="fixed",
)


def _clear_shared_state() -> None:
    clear_csr_cache()
    clear_shared_path_sets()
    clear_capacity_cache()


def _assert_parity(reference, incremental) -> None:
    if reference.event_log != incremental.event_log:
        raise RuntimeError("backends diverged: event logs differ")
    if reference.epochs != incremental.epochs:
        raise RuntimeError("backends diverged: epoch records differ")


def _case(
    kernel: str,
    num_switches: int,
    ports: int,
    degree: int,
    config: LifecycleConfig,
    repeats: int,
    repeats_old: int,
    seed: int = 5,
) -> dict:
    plant = JellyfishTopology.build(num_switches, ports, degree, rng=seed)

    def run_reference():
        return run_lifecycle(plant, config, seed=seed, backend="reference")

    def run_incremental():
        return run_lifecycle(plant, config, seed=seed, backend="incremental")

    _clear_shared_state()
    reference = run_reference()
    incremental = run_incremental()
    _assert_parity(reference, incremental)

    old_seconds = best_of(run_reference, repeats_old, setup=_clear_shared_state)
    new_seconds = best_of(run_incremental, repeats, setup=_clear_shared_state)
    return {
        "kernel": kernel,
        "graph": (
            f"jellyfish N={num_switches} "
            f"({reference.events_applied} events, {len(reference.epochs)} epochs)"
        ),
        "num_nodes": num_switches,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the 200-event scenario; prints only unless --output is given",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    cases = [
        _case(
            "lifecycle_200_events", 64, 12, 9, QUICK_CONFIG, repeats=3, repeats_old=2
        )
    ]
    if not args.quick:
        cases.append(
            _case(
                "lifecycle_1000_events",
                128,
                14,
                10,
                FULL_CONFIG,
                repeats=3,
                repeats_old=2,
            )
        )
        acceptance = cases[-1]
        if acceptance["speedup"] < 5.0:
            raise RuntimeError(
                f"acceptance row below 5x: {acceptance['speedup']:.2f}x"
            )


    # Every snapshot row carries the recorder's RSS high-water mark at the
    # time the row set completed (ru_maxrss is process-monotonic, so this is
    # an upper bound per row, not a per-case footprint).
    for case in cases:
        case["peak_rss_kb"] = peak_rss_kb()
    for case in cases:
        print(
            f"{case['kernel']:<24} {case['graph']:<44} "
            f"old {case['old_seconds'] * 1e3:9.3f} ms  "
            f"new {case['new_seconds'] * 1e3:9.3f} ms  "
            f"{case['speedup']:7.1f}x"
        )
    output = args.output
    if output is None:
        if args.quick:
            print("quick run: snapshot not written (pass --output to record one)")
            return 0
        output = OUTPUT
    snapshot = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
