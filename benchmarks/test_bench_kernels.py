"""Micro-benchmarks of the CSR graph kernels against the retained references.

``--benchmark-only`` runs these alongside the seed benchmarks; the
``record_kernels.py`` script in this directory turns the same comparisons
into the committed ``BENCH_kernels.json`` trajectory snapshot.
"""

import pytest

from repro.graphs.csr import batched_hop_distances, clear_csr_cache, csr_graph
from repro.graphs.properties import average_path_length, diameter
from repro.routing._reference import (
    all_pairs_hop_distances_reference,
    k_shortest_paths_reference,
)
from repro.routing.ksp import k_shortest_paths
from repro.topologies.jellyfish import JellyfishTopology


@pytest.fixture(scope="module")
def fig05_scale_graph():
    """A fig05-style Jellyfish at reduced size (paper degree, fewer switches)."""
    return JellyfishTopology.build(400, 48, 36, rng=0).graph


@pytest.fixture(scope="module")
def ksp_graph():
    return JellyfishTopology.build(100, 10, 6, rng=2).graph


def test_bench_batched_bfs_all_pairs(benchmark, fig05_scale_graph):
    clear_csr_cache()
    csr_graph(fig05_scale_graph)
    matrix = benchmark(batched_hop_distances, fig05_scale_graph)
    assert matrix.shape == (400, 400)


def test_bench_reference_bfs_all_pairs(benchmark, fig05_scale_graph):
    table = benchmark.pedantic(
        all_pairs_hop_distances_reference, args=(fig05_scale_graph,),
        iterations=1, rounds=2,
    )
    assert len(table) == 400


def test_bench_fig05_scale_metrics(benchmark, fig05_scale_graph):
    """Mean path length + diameter, the exact queries fig05 issues per size."""
    clear_csr_cache()

    def run():
        clear_csr_cache()
        return average_path_length(fig05_scale_graph), diameter(fig05_scale_graph)

    mean_hops, diam = benchmark(run)
    assert 1.0 < mean_hops < 3.0
    assert diam <= 4


def test_bench_csr_yen_cold(benchmark, ksp_graph):
    nodes = sorted(ksp_graph.nodes)
    clear_csr_cache()
    csr = csr_graph(ksp_graph)

    def run():
        csr.result_cache.clear()
        return k_shortest_paths(ksp_graph, nodes[0], nodes[-1], 8)

    paths = benchmark(run)
    assert len(paths) == 8


def test_bench_csr_yen_warm(benchmark, ksp_graph):
    nodes = sorted(ksp_graph.nodes)
    paths = benchmark(k_shortest_paths, ksp_graph, nodes[0], nodes[-1], 8)
    assert len(paths) == 8


def test_bench_reference_yen(benchmark, ksp_graph):
    nodes = sorted(ksp_graph.nodes)
    paths = benchmark(k_shortest_paths_reference, ksp_graph, nodes[0], nodes[-1], 8)
    assert len(paths) == 8
