"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures from the paper; they quantify the sensitivity of the
reproduction to its own knobs:

* number of candidate paths k in k-shortest-path routing;
* ECMP width 8 vs 64 (the paper's footnote: 64-way barely helps);
* random-graph construction procedure (paper's sequential vs pairing model);
* localization fraction in the two-layer Jellyfish;
* servers-per-switch split at fixed equipment.
"""

import pytest

from repro.graphs.properties import average_path_length
from repro.graphs.regular import pairing_model_regular_graph, sequential_random_regular_graph
from repro.simulation.fluid import MPTCP, SimulationConfig, simulate_fluid
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic


def _jellyfish():
    return JellyfishTopology.build(30, 8, 5, rng=1)


@pytest.mark.parametrize("k", [1, 4, 8, 16])
def test_bench_ablation_ksp_k(benchmark, k):
    """Throughput sensitivity to the number of shortest paths used."""
    topology = _jellyfish()
    traffic = random_permutation_traffic(topology, rng=2)
    config = SimulationConfig(routing="ksp", k=k, congestion_control=MPTCP)

    def run():
        return simulate_fluid(topology, traffic, config, rng=3).average_throughput

    value = benchmark.pedantic(run, iterations=1, rounds=1)
    assert 0.0 <= value <= 1.0
    print(f"\nksp k={k}: average throughput {value:.3f}")


@pytest.mark.parametrize("width", [8, 64])
def test_bench_ablation_ecmp_width(benchmark, width):
    """8-way vs 64-way ECMP: more ways barely help on a random graph."""
    topology = _jellyfish()
    traffic = random_permutation_traffic(topology, rng=4)
    config = SimulationConfig(routing="ecmp", k=width, congestion_control=MPTCP)

    def run():
        return simulate_fluid(topology, traffic, config, rng=5).average_throughput

    value = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\necmp width={width}: average throughput {value:.3f}")


@pytest.mark.parametrize(
    "constructor",
    [sequential_random_regular_graph, pairing_model_regular_graph],
    ids=["sequential", "pairing"],
)
def test_bench_ablation_construction_method(benchmark, constructor):
    """Both RRG constructions give the same path-length profile."""
    def run():
        graph = constructor(60, 6, rng=6)
        return average_path_length(graph)

    value = benchmark.pedantic(run, iterations=1, rounds=1)
    assert 1.5 < value < 3.5
    print(f"\n{constructor.__name__}: average path length {value:.3f}")


@pytest.mark.parametrize("servers_per_switch", [2, 3, 4])
def test_bench_ablation_server_split(benchmark, servers_per_switch):
    """Fixed equipment (8-port switches): servers vs network-degree trade-off."""
    def run():
        topology = JellyfishTopology.build(
            24, 8, 8 - servers_per_switch, rng=7,
            servers_per_switch=servers_per_switch,
        )
        traffic = random_permutation_traffic(topology, rng=8)
        config = SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP)
        return simulate_fluid(topology, traffic, config, rng=9).average_throughput

    value = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nservers/switch={servers_per_switch}: average throughput {value:.3f}")
