"""Micro-benchmarks of the flow engine against the retained references.

``--benchmark-only`` runs these alongside the seed benchmarks; the
``record_flow.py`` script in this directory turns the same comparisons
into the committed ``BENCH_flow.json`` trajectory snapshot.
"""

import pytest

from repro.flow._reference import (
    assemble_path_lp_reference,
    max_min_fair_allocation_reference,
)
from repro.flow.maxmin import max_min_fair_allocation
from repro.flow.path_lp import PathLPStructure
from repro.routing.paths import build_path_set
from repro.simulation.fluid import (
    TCP_EIGHT_FLOWS,
    SimulationConfig,
    _build_flow_specs,
    _link_capacities,
)
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def fig13_scale_problem():
    """Equipment-matched Jellyfish, permutation traffic, 8 striped subflows."""
    fattree = FatTreeTopology.build(8)
    topology = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=8,
        num_servers=int(round(fattree.num_servers * 1.13)),
        rng=1,
    )
    traffic = random_permutation_traffic(topology, rng=2)
    demands = traffic.switch_pairs()
    path_set = build_path_set(topology.graph, list(demands), scheme="ksp", k=8)
    config = SimulationConfig(routing="ksp", k=8, congestion_control=TCP_EIGHT_FLOWS)
    specs = _build_flow_specs(traffic, path_set, config, ensure_rng(3))
    capacities = _link_capacities(topology)
    return topology, demands, path_set, specs, capacities


def test_bench_maxmin_vectorized(benchmark, fig13_scale_problem):
    _, _, _, specs, capacities = fig13_scale_problem
    allocation = benchmark(max_min_fair_allocation, specs, capacities)
    assert allocation.flow_rates


def test_bench_maxmin_reference(benchmark, fig13_scale_problem):
    _, _, _, specs, capacities = fig13_scale_problem
    allocation = benchmark.pedantic(
        max_min_fair_allocation_reference, args=(specs, capacities),
        iterations=1, rounds=2,
    )
    assert allocation.flow_rates


def test_bench_path_lp_assembly_vectorized(benchmark, fig13_scale_problem):
    topology, demands, path_set, _, _ = fig13_scale_problem
    structure = PathLPStructure(topology, scheme="ksp", k=8)
    structure.assemble(demands, path_set)  # warm the per-pair blocks
    matrices = benchmark(structure.assemble, demands, path_set)
    assert matrices[-1] > 0


def test_bench_path_lp_assembly_reference(benchmark, fig13_scale_problem):
    topology, demands, path_set, _, _ = fig13_scale_problem
    matrices = benchmark.pedantic(
        assemble_path_lp_reference, args=(topology, demands, path_set),
        iterations=1, rounds=3,
    )
    assert matrices[-1] > 0
