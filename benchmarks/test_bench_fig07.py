"""Benchmark regenerating Fig 7 of the paper: expansion cost: Jellyfish vs LEGUP-like Clos upgrades.

Runs the experiment at the fast ("small") scale and prints the reproduced
rows, so `pytest benchmarks/ --benchmark-only` doubles as the harness that
regenerates every table and figure.
"""

from repro.experiments.common import format_table, run_experiment


def test_bench_fig07(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig07",), kwargs={"scale": "small", "seed": 0},
        iterations=1, rounds=1,
    )
    assert result.rows
    print()
    print(format_table(result))
