"""Benchmark regenerating Table 1 of the paper: routing x congestion-control throughput matrix.

Runs the experiment at the fast ("small") scale and prints the reproduced
rows, so `pytest benchmarks/ --benchmark-only` doubles as the harness that
regenerates every table and figure.
"""

from repro.experiments.common import format_table, run_experiment


def test_bench_table1(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("table1",), kwargs={"scale": "small", "seed": 0},
        iterations=1, rounds=1,
    )
    assert result.rows
    print()
    print(format_table(result))
