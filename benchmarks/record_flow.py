"""Record the flow-engine perf trajectory: old implementations vs vectorized.

Times the pre-vectorization flow implementations (kept in
``repro.flow._reference``) against the vectorized engine on representative
fig08/fig13-scale inputs and writes ``benchmarks/BENCH_flow.json``.  Run it
after touching anything under ``repro.flow`` or the fluid simulator:

    PYTHONPATH=src python benchmarks/record_flow.py            # all sizes (~minutes)
    PYTHONPATH=src python benchmarks/record_flow.py --quick    # small sizes only

A ``--quick`` run prints the comparison but refuses to overwrite the
committed snapshot (pass ``--output`` explicitly to write one), so the
paper-scale rows backing the recorded trajectory never vanish silently.

Cases:

* ``max_min_allocation`` -- the progressive-filling kernel on a fig13-style
  instance (equipment-matched Jellyfish, permutation traffic, 8 striped
  subflows per pair);
* ``fluid_mptcp_simulation`` -- ``simulate_fluid`` end-to-end with the MPTCP
  tiered allocator, old vs new max-min kernel underneath;
* ``path_lp_assembly`` / ``edge_lp_assembly`` -- constraint-matrix
  construction only (``lil_matrix`` cell writes vs vectorized COO
  triplets); the path row also reports a warm rep that reuses the cached
  demand-independent pair blocks;
* ``fig02c_binary_search`` -- the servers-at-full-throughput binary search
  end-to-end: the pre-refactor driver (reference LP per matrix, no shared
  state) vs the production harness, cold (empty caches) and warm (shared
  path tables and LP structures hot).  Both drivers are asserted to find
  the same server count.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.telemetry.manifest import peak_rss_kb
from repro.telemetry.timing import best_of, timed_best_of
from unittest import mock

from repro.flow._reference import (
    assemble_edge_lp_reference,
    assemble_path_lp_reference,
    max_concurrent_flow_path_lp_reference,
    max_min_fair_allocation_reference,
)
from repro.flow.maxmin import max_min_fair_allocation
from repro.flow.mcf import _assemble_edge_lp
from repro.flow.path_lp import PathLPStructure, clear_shared_lp_structures
from repro.flow.throughput import max_servers_at_full_throughput
from repro.graphs.csr import clear_csr_cache
from repro.routing.paths import build_path_set, clear_shared_path_sets
from repro.simulation.fluid import (
    MPTCP,
    TCP_EIGHT_FLOWS,
    SimulationConfig,
    _build_flow_specs,
    _link_capacities,
    simulate_fluid,
)
import repro.simulation.fluid as fluid_module
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng

OUTPUT = Path(__file__).resolve().parent / "BENCH_flow.json"


def _best_of(callable_, repeats: int) -> float:
    """Shared-clock best-of timing (see :func:`repro.telemetry.timing.best_of`)."""
    return best_of(callable_, repeats)


def _fig13_instance(fattree_k: int, server_factor: float = 1.13, seed: int = 1):
    """Equipment-matched Jellyfish + permutation traffic, fig13's setup."""
    fattree = FatTreeTopology.build(fattree_k)
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=fattree_k,
        num_servers=int(round(fattree.num_servers * server_factor)),
        rng=seed,
    )
    traffic = random_permutation_traffic(jellyfish, rng=seed + 1)
    return jellyfish, traffic


def _maxmin_case(fattree_k: int, repeats: int, repeats_old=None) -> dict:
    topology, traffic = _fig13_instance(fattree_k)
    path_set = build_path_set(
        topology.graph, list(traffic.switch_pairs()), scheme="ksp", k=8
    )
    config = SimulationConfig(routing="ksp", k=8, congestion_control=TCP_EIGHT_FLOWS)
    specs = _build_flow_specs(traffic, path_set, config, ensure_rng(3))
    capacities = _link_capacities(topology)
    new_seconds = _best_of(
        lambda: max_min_fair_allocation(specs, capacities), repeats
    )
    old_seconds = _best_of(
        lambda: max_min_fair_allocation_reference(specs, capacities),
        repeats if repeats_old is None else repeats_old,
    )
    return {
        "kernel": "max_min_allocation",
        "graph": f"jellyfish equip k={fattree_k} ({len(specs) * 8} subflows)",
        "num_nodes": topology.num_switches,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _fluid_case(fattree_k: int, repeats: int, repeats_old=None) -> dict:
    topology, traffic = _fig13_instance(fattree_k)
    config = SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP)

    def run_new():
        return simulate_fluid(topology, traffic, config, rng=5)

    def run_old():
        with mock.patch.object(
            fluid_module, "max_min_fair_allocation", max_min_fair_allocation_reference
        ):
            return simulate_fluid(topology, traffic, config, rng=5)

    run_new()  # warm the shared path table so both variants route from cache
    new_seconds = _best_of(run_new, repeats)
    old_seconds = _best_of(
        run_old, repeats if repeats_old is None else repeats_old
    )
    return {
        "kernel": "fluid_mptcp_simulation",
        "graph": f"jellyfish equip k={fattree_k}",
        "num_nodes": topology.num_switches,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _path_assembly_case(fattree_k: int, repeats: int) -> list:
    topology, traffic = _fig13_instance(fattree_k)
    demands = traffic.switch_pairs()
    path_set = build_path_set(topology.graph, list(demands), scheme="ksp", k=8)
    old_seconds = _best_of(
        lambda: assemble_path_lp_reference(topology, demands, path_set), repeats
    )
    cold_seconds = _best_of(
        lambda: PathLPStructure(topology, scheme="ksp", k=8).assemble(
            demands, path_set
        ),
        repeats,
    )
    structure = PathLPStructure(topology, scheme="ksp", k=8)
    structure.assemble(demands, path_set)  # build the per-pair blocks once
    warm_seconds = _best_of(lambda: structure.assemble(demands, path_set), repeats)
    label = f"jellyfish equip k={fattree_k} ({len(demands)} pairs)"
    return [
        {
            "kernel": "path_lp_assembly_cold",
            "graph": label,
            "num_nodes": topology.num_switches,
            "old_seconds": old_seconds,
            "new_seconds": cold_seconds,
            "speedup": old_seconds / cold_seconds,
        },
        {
            "kernel": "path_lp_assembly_warm",
            "graph": label,
            "num_nodes": topology.num_switches,
            "old_seconds": old_seconds,
            "new_seconds": warm_seconds,
            "speedup": old_seconds / warm_seconds,
        },
    ]


def _edge_assembly_case(num_switches: int, ports: int, degree: int, repeats: int) -> dict:
    topology = JellyfishTopology.build(num_switches, ports, degree, rng=7)
    traffic = random_permutation_traffic(topology, rng=8)
    demands = traffic.switch_pairs()
    old_seconds = _best_of(
        lambda: assemble_edge_lp_reference(topology, demands), repeats
    )
    new_seconds = _best_of(lambda: _assemble_edge_lp(topology, demands), repeats)
    return {
        "kernel": "edge_lp_assembly",
        "graph": f"jellyfish n={num_switches} r={degree}",
        "num_nodes": num_switches,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _clear_flow_state() -> None:
    clear_csr_cache()
    clear_shared_path_sets()
    clear_shared_lp_structures()


def _search_production(ports: int, seed: int) -> int:
    rng = ensure_rng(seed)
    fattree = FatTreeTopology.build(ports)

    def factory(num_servers: int):
        return JellyfishTopology.from_equipment(
            num_switches=fattree.num_switches,
            ports_per_switch=ports,
            num_servers=num_servers,
            rng=rng,
        )

    return max_servers_at_full_throughput(
        factory,
        lower=max(2, fattree.num_servers // 2),
        upper=fattree.num_switches * max(1, ports - 3),
        num_matrices=2,
        engine="path",
        k=8,
        rng=rng,
    )


def _search_reference(ports: int, seed: int) -> int:
    """The pre-refactor fig02c search: reference LP, no screens, no caches."""
    rng = ensure_rng(seed)
    fattree = FatTreeTopology.build(ports)

    def factory(num_servers: int):
        return JellyfishTopology.from_equipment(
            num_switches=fattree.num_switches,
            ports_per_switch=ports,
            num_servers=num_servers,
            rng=rng,
        )

    def supports(topology, num_matrices: int, k: int) -> bool:
        if not topology.is_connected():
            return False
        for _ in range(num_matrices):
            traffic = random_permutation_traffic(topology, rng=rng)
            if len(traffic) == 0:
                continue
            theta = max_concurrent_flow_path_lp_reference(topology, traffic, k=k)
            if min(theta, 1.0) < 1.0 - 1e-9:
                return False
        return True

    def feasible(num_servers: int) -> bool:
        return supports(factory(num_servers), num_matrices=2, k=8)

    lower = max(2, fattree.num_servers // 2)
    upper = fattree.num_switches * max(1, ports - 3)
    if not feasible(lower):
        raise RuntimeError(f"lower bound of {lower} servers is infeasible")
    low, high = lower, upper
    if feasible(upper):
        return upper
    while high - low > 1:
        middle = (low + high) // 2
        if feasible(middle):
            low = middle
        else:
            high = middle
    return low


def _search_case(ports: int, repeats: int) -> list:
    label = f"fattree-equipment ports={ports}"

    def timed(callable_):
        best, result = timed_best_of(callable_, repeats, setup=_clear_flow_state)
        return best, result

    old_seconds, old_result = timed(lambda: _search_reference(ports, 0))
    cold_seconds, cold_result = timed(lambda: _search_production(ports, 0))
    # Warm: leave the shared path tables / LP structures from a priming run.
    _clear_flow_state()
    _search_production(ports, 0)
    warm_seconds = _best_of(lambda: _search_production(ports, 0), repeats)
    warm_result = _search_production(ports, 0)
    if not old_result == cold_result == warm_result:
        raise RuntimeError(
            f"search results diverged: old={old_result} cold={cold_result} "
            f"warm={warm_result}"
        )
    return [
        {
            "kernel": "fig02c_binary_search_cold",
            "graph": label,
            "num_nodes": old_result,
            "old_seconds": old_seconds,
            "new_seconds": cold_seconds,
            "speedup": old_seconds / cold_seconds,
        },
        {
            "kernel": "fig02c_binary_search_warm",
            "graph": label,
            "num_nodes": old_result,
            "old_seconds": old_seconds,
            "new_seconds": warm_seconds,
            "speedup": old_seconds / warm_seconds,
        },
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the larger fig13/fig02c sizes; prints only unless --output is given",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    cases = []
    cases.append(_maxmin_case(10, repeats=3))
    cases.extend(_path_assembly_case(10, repeats=5))
    cases.append(_edge_assembly_case(20, 8, 5, repeats=5))
    cases.append(_fluid_case(10, repeats=3, repeats_old=2))
    cases.extend(_search_case(6, repeats=2))
    if not args.quick:
        cases.append(_maxmin_case(12, repeats=3, repeats_old=2))
        cases.extend(_path_assembly_case(12, repeats=5))
        cases.extend(_search_case(8, repeats=2))


    # Every snapshot row carries the recorder's RSS high-water mark at the
    # time the row set completed (ru_maxrss is process-monotonic, so this is
    # an upper bound per row, not a per-case footprint).
    for case in cases:
        case["peak_rss_kb"] = peak_rss_kb()
    for case in cases:
        print(
            f"{case['kernel']:<28} {case['graph']:<36} "
            f"old {case['old_seconds'] * 1e3:9.3f} ms  "
            f"new {case['new_seconds'] * 1e3:9.3f} ms  "
            f"{case['speedup']:7.1f}x"
        )
    output = args.output
    if output is None:
        if args.quick:
            print("quick run: snapshot not written (pass --output to record one)")
            return 0
        output = OUTPUT
    snapshot = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
