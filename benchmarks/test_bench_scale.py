"""Guards for the hyperscale trajectory snapshot and the BENCH_* schema.

``BENCH_scale.json`` is the acceptance artifact for the hyperscale mode:
the ``fig05-scale`` / ``fig02a-scale`` workload measured at N in
{1k, 10k, 50k, 100k} switches with per-size subprocess isolation (see
``record_scale.py``).  These tests pin the committed snapshot so a
regression in the streaming BFS kernel, the stub-matching constructor, or
the sampled estimators cannot land silently:

* all four sizes are present with positive wall-clock and peak RSS;
* the 100k row stays within generous wall-clock / RSS ceilings (one
  machine, minutes not hours, single-digit GB);
* the recorded estimates look like Jellyfish (mean path length grows
  ~log N and stays under the paper's ~4-hop envelope);
* every committed ``BENCH_*.json`` row carries ``peak_rss_kb`` next to its
  wall-clock figure (the record_* satellite contract).

The pytest-benchmark row times the 1k-switch workload end-to-end, sized to
stay inside the tier-1 budget while still exercising the sampled path.
"""

import json
from pathlib import Path

from repro.graphs.sampling import sampled_path_length_stats
from repro.topologies.ensemble import single_rrg_core

BENCH_DIR = Path(__file__).resolve().parent
SNAPSHOT = BENCH_DIR / "BENCH_scale.json"

EXPECTED_SIZES = [1000, 10000, 50000, 100000]

#: Ceilings for the 100k acceptance row.  Deliberately loose (the recorded
#: run is ~14 s / ~1.2 GB) so slow CI machines pass, while a kernel that
#: quietly rematerializes the full all-pairs matrix (~75 GB at 100k) or
#: regresses an order of magnitude still trips them.
MAX_100K_SECONDS = 900.0
MAX_100K_RSS_KB = 8 * 1024 * 1024


def test_scale_snapshot_covers_all_sizes():
    snapshot = json.loads(SNAPSHOT.read_text())
    assert snapshot["schema"] == 1
    rows = {case["num_nodes"]: case for case in snapshot["cases"]}
    assert sorted(rows) == EXPECTED_SIZES
    for case in rows.values():
        assert case["seconds"] > 0
        assert case["peak_rss_kb"] > 0
        assert case["build_seconds"] > 0
        assert case["path_seconds"] > 0
        assert case["bisection_seconds"] > 0


def test_scale_snapshot_100k_within_ceilings():
    snapshot = json.loads(SNAPSHOT.read_text())
    rows = {case["num_nodes"]: case for case in snapshot["cases"]}
    acceptance = rows[100000]
    assert acceptance["seconds"] < MAX_100K_SECONDS
    assert acceptance["peak_rss_kb"] < MAX_100K_RSS_KB


def test_scale_snapshot_metrics_look_like_jellyfish():
    snapshot = json.loads(SNAPSHOT.read_text())
    rows = {case["num_nodes"]: case for case in snapshot["cases"]}
    means = [rows[n]["mean_path_length"] for n in EXPECTED_SIZES]
    # Mean path length grows with N (log-like) but stays in the paper's
    # short-path envelope even at 100k switches.
    assert means == sorted(means)
    assert 2.0 < means[0] < 3.0
    assert means[-1] < 4.5
    for n in EXPECTED_SIZES:
        assert rows[n]["path_ci_halfwidth"] < 0.05
        assert 3 <= rows[n]["diameter_lower_bound"] <= 6
        # Random balanced cuts concentrate hard around the expected cut.
        assert abs(rows[n]["mean_cut"] - rows[n]["expected_cut"]) < (
            0.05 * rows[n]["expected_cut"]
        )


def test_every_bench_snapshot_row_has_peak_rss():
    for path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        snapshot = json.loads(path.read_text())
        for case in snapshot["cases"]:
            assert "peak_rss_kb" in case, f"{path.name}: {case['kernel']}"
            assert case["peak_rss_kb"] > 0, f"{path.name}: {case['kernel']}"


def test_bench_scale_workload_1k(benchmark):
    def workload():
        core = single_rrg_core(1000, 48, 36, seed=5)
        return sampled_path_length_stats(core.csr(), num_sources=64, seed=5)

    stats = benchmark(workload)
    assert not stats.exact
    assert stats.ci_low <= stats.mean <= stats.ci_high
