"""Benchmark regenerating Fig 2(c) of the paper: servers at full throughput vs equipment cost (optimal routing).

Runs the experiment at the fast ("small") scale and prints the reproduced
rows, so `pytest benchmarks/ --benchmark-only` doubles as the harness that
regenerates every table and figure.
"""

from repro.experiments.common import format_table, run_experiment


def test_bench_fig02c(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig02c",), kwargs={"scale": "small", "seed": 0},
        iterations=1, rounds=1,
    )
    assert result.rows
    print()
    print(format_table(result))
