"""Record the hyperscale trajectory: wall-clock and peak RSS vs switch count.

Runs the ``fig05-scale`` / ``fig02a-scale`` workload -- stub-matching RRG
construction, sampled path-length stats through the chunked BFS kernel,
and sampled bisection cuts -- at N in {1k, 10k, 50k, 100k} switches and
writes ``benchmarks/BENCH_scale.json``.  Run it after touching the CSR
kernels, the sampling estimators, or the stub-matching constructor:

    PYTHONPATH=src python benchmarks/record_scale.py            # full (~2 min)
    PYTHONPATH=src python benchmarks/record_scale.py --quick    # 1k + 10k only

Each size runs in a **child process** (this script re-execs itself with
``--child``): ``ru_maxrss`` is a process-wide monotonic high-water mark,
so measuring four sizes in one process would report the 100k footprint
for every row.  Subprocess isolation gives each N its own honest peak.

A ``--quick`` run prints the rows but refuses to overwrite the committed
snapshot (pass ``--output`` explicitly), so the 100k acceptance row never
vanishes silently.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

OUTPUT = Path(__file__).resolve().parent / "BENCH_scale.json"

PORTS = 48
NETWORK_DEGREE = 36
NUM_SOURCES = 256
BISECTION_TRIALS = 9
SEED = 5

FULL_SIZES = [1000, 10000, 50000, 100000]
QUICK_SIZES = [1000, 10000]


def _child(num_switches: int) -> int:
    """Measure one size in this (fresh) process and print a JSON row."""
    from repro.graphs.sampling import (
        sampled_bisection_stats,
        sampled_path_length_stats,
    )
    from repro.telemetry.manifest import peak_rss_kb
    from repro.topologies.ensemble import single_rrg_core

    t0 = time.perf_counter()
    core = single_rrg_core(num_switches, PORTS, NETWORK_DEGREE, seed=SEED)
    csr = core.csr()
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    paths = sampled_path_length_stats(csr, num_sources=NUM_SOURCES, seed=SEED)
    path_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    cuts = sampled_bisection_stats(csr, trials=BISECTION_TRIALS, seed=SEED)
    bisection_seconds = time.perf_counter() - t0

    row = {
        "kernel": f"scale_{num_switches}_switches",
        "graph": (
            f"rrg N={num_switches} k={PORTS} r={NETWORK_DEGREE} "
            f"({NUM_SOURCES} sources, {BISECTION_TRIALS} cuts)"
        ),
        "num_nodes": num_switches,
        "build_seconds": build_seconds,
        "path_seconds": path_seconds,
        "bisection_seconds": bisection_seconds,
        "seconds": build_seconds + path_seconds + bisection_seconds,
        "peak_rss_kb": peak_rss_kb(),
        "mean_path_length": paths.mean,
        "path_ci_halfwidth": paths.ci_halfwidth,
        "diameter_lower_bound": paths.diameter_lower_bound,
        "mean_cut": cuts.mean_cut,
        "expected_cut": cuts.expected_cut,
    }
    json.dump(row, sys.stdout)
    print()
    return 0


def _measure(num_switches: int) -> dict:
    """Run one size in an isolated child process and parse its row."""
    result = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", str(num_switches)],
        capture_output=True,
        text=True,
        check=False,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"child for N={num_switches} failed:\n{result.stderr.strip()}"
        )
    return json.loads(result.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only 1k and 10k; prints only unless --output is given",
    )
    parser.add_argument(
        "--child",
        type=int,
        default=None,
        metavar="N",
        help=argparse.SUPPRESS,  # internal: measure one size in-process
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.child is not None:
        return _child(args.child)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    cases = []
    for num_switches in sizes:
        case = _measure(num_switches)
        cases.append(case)
        print(
            f"{case['kernel']:<24} build {case['build_seconds']:7.2f} s  "
            f"paths {case['path_seconds']:7.2f} s  "
            f"cuts {case['bisection_seconds']:6.2f} s  "
            f"rss {case['peak_rss_kb'] / 1024:7.0f} MB  "
            f"apl {case['mean_path_length']:.3f}"
        )

    output = args.output
    if output is None:
        if args.quick:
            print("quick run: snapshot not written (pass --output to record one)")
            return 0
        output = OUTPUT
    snapshot = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
