"""Micro-benchmarks of the core primitives (construction, KSP, LP, simulator).

These time the building blocks that every experiment leans on, so
performance regressions are visible independently of the figure harnesses.
"""

from repro.flow.path_lp import max_concurrent_flow_path_lp
from repro.graphs.regular import sequential_random_regular_graph
from repro.routing.ksp import k_shortest_paths
from repro.simulation.fluid import MPTCP, SimulationConfig, simulate_fluid
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic


def test_bench_rrg_construction(benchmark):
    graph = benchmark(sequential_random_regular_graph, 200, 12, 1)
    assert graph.number_of_edges() == 200 * 12 // 2


def test_bench_fattree_construction(benchmark):
    topology = benchmark(FatTreeTopology.build, 10)
    assert topology.num_servers == 250


def test_bench_yen_k_shortest_paths(benchmark):
    topology = JellyfishTopology.build(100, 10, 6, rng=2)
    nodes = sorted(topology.graph.nodes)

    def run():
        return k_shortest_paths(topology.graph, nodes[0], nodes[-1], 8)

    paths = benchmark(run)
    assert len(paths) == 8


def test_bench_path_lp_throughput(benchmark):
    topology = JellyfishTopology.build(30, 8, 5, rng=3)
    traffic = random_permutation_traffic(topology, rng=3)

    def run():
        return max_concurrent_flow_path_lp(topology, traffic, k=8)

    theta = benchmark.pedantic(run, iterations=1, rounds=3)
    assert theta > 0


def test_bench_fluid_simulation(benchmark):
    topology = JellyfishTopology.build(30, 8, 5, rng=4)
    traffic = random_permutation_traffic(topology, rng=4)
    config = SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP)

    def run():
        return simulate_fluid(topology, traffic, config, rng=5).average_throughput

    value = benchmark.pedantic(run, iterations=1, rounds=3)
    assert 0.0 <= value <= 1.0
