"""Record the dynamics-engine perf trajectory: scalar reference vs vectorized.

Times the retained scalar AIMD round loop
(``repro.simulation._reference.simulate_aimd_reference``) against the
array-native round engine on representative sizes and writes
``benchmarks/BENCH_sim.json``.  Run it after touching anything under
``repro.simulation``:

    PYTHONPATH=src python benchmarks/record_sim.py            # all sizes (~minutes)
    PYTHONPATH=src python benchmarks/record_sim.py --quick    # small sizes only

A ``--quick`` run prints the comparison but refuses to overwrite the
committed snapshot (pass ``--output`` explicitly to write one), so the
fig11-scale rows backing the recorded trajectory never vanish silently.

Cases:

* ``aimd_round_loop`` -- the round engine alone (path set prebuilt and
  passed to both engines), small (fig13-style k=8 equipment) and
  fig11-scale (k=10/k=12 equipment, MPTCP x 8 subflows x 200 rounds); this
  is the >=10x acceptance row;
* ``aimd_end_to_end_cold`` / ``aimd_end_to_end_warm`` -- ``simulate_aimd``
  including routing, with the shared path-table / capacity caches cleared
  (cold) or hot from a previous run over the same topology (warm, the
  dynamics sweeps' repeated-trial regime).

Both engines' results are asserted identical before a row is recorded.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.telemetry.manifest import peak_rss_kb
from repro.telemetry.timing import best_of, timed_best_of

from repro.graphs.csr import clear_csr_cache
from repro.routing.paths import build_path_set, clear_shared_path_sets
from repro.simulation._reference import simulate_aimd_reference
from repro.simulation.aimd import AimdConfig, simulate_aimd
from repro.simulation.capacity import clear_capacity_cache
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic

OUTPUT = Path(__file__).resolve().parent / "BENCH_sim.json"

CONFIG = AimdConfig(
    routing="ksp", k=8, congestion_control="mptcp", rounds=200, warmup_rounds=50
)


def _best_of(callable_, repeats: int) -> float:
    """Shared-clock best-of timing (see :func:`repro.telemetry.timing.best_of`)."""
    return best_of(callable_, repeats)


def _fig11_instance(fattree_k: int, server_factor: float = 1.25, seed: int = 1):
    """Equipment-matched Jellyfish + permutation traffic, fig11's setup."""
    fattree = FatTreeTopology.build(fattree_k)
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=fattree_k,
        num_servers=int(round(fattree.num_servers * server_factor)),
        rng=seed,
    )
    traffic = random_permutation_traffic(jellyfish, rng=seed + 1)
    return jellyfish, traffic


def _assert_same(new, old) -> None:
    if [float(value) for value in new.flow_throughputs] != [
        float(value) for value in old.flow_throughputs
    ]:
        raise RuntimeError("engines diverged: throughputs differ")
    if new.convergence_round != old.convergence_round:
        raise RuntimeError("engines diverged: convergence rounds differ")


def _round_loop_case(fattree_k: int, repeats: int, repeats_old=None) -> dict:
    topology, traffic = _fig11_instance(fattree_k)
    path_set = build_path_set(
        topology.graph, list(traffic.switch_pairs()), scheme="ksp", k=8
    )
    new_result = simulate_aimd(topology, traffic, CONFIG, rng=5, path_set=path_set)
    old_result = simulate_aimd_reference(
        topology, traffic, CONFIG, rng=5, path_set=path_set
    )
    _assert_same(new_result, old_result)
    new_seconds = _best_of(
        lambda: simulate_aimd(topology, traffic, CONFIG, rng=5, path_set=path_set),
        repeats,
    )
    old_seconds = _best_of(
        lambda: simulate_aimd_reference(
            topology, traffic, CONFIG, rng=5, path_set=path_set
        ),
        repeats if repeats_old is None else repeats_old,
    )
    # One connection per cross-rack demand (distinct switch pairs undercount
    # when two server pairs collide on the same rack pair).
    subflows = (
        sum(
            1
            for demand in traffic
            if demand.source_switch != demand.destination_switch
        )
        * CONFIG.subflows
    )
    return {
        "kernel": "aimd_round_loop",
        "graph": f"jellyfish equip k={fattree_k} ({subflows} subflows x {CONFIG.rounds} rounds)",
        "num_nodes": topology.num_switches,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _clear_sim_state() -> None:
    clear_csr_cache()
    clear_shared_path_sets()
    clear_capacity_cache()


def _end_to_end_case(fattree_k: int, repeats: int, repeats_old=None) -> list:
    topology, traffic = _fig11_instance(fattree_k)
    label = f"jellyfish equip k={fattree_k}"

    def run_new():
        return simulate_aimd(topology, traffic, CONFIG, rng=5)

    def run_old():
        return simulate_aimd_reference(topology, traffic, CONFIG, rng=5)

    def timed_cold(callable_, reps):
        return timed_best_of(callable_, reps, setup=_clear_sim_state)[0]

    _assert_same(run_new(), run_old())
    old_reps = repeats if repeats_old is None else repeats_old
    old_seconds = timed_cold(run_old, old_reps)
    cold_seconds = timed_cold(run_new, repeats)
    _clear_sim_state()
    run_new()  # prime the shared path table and capacity cache
    warm_seconds = _best_of(run_new, repeats)
    return [
        {
            "kernel": "aimd_end_to_end_cold",
            "graph": label,
            "num_nodes": topology.num_switches,
            "old_seconds": old_seconds,
            "new_seconds": cold_seconds,
            "speedup": old_seconds / cold_seconds,
        },
        {
            "kernel": "aimd_end_to_end_warm",
            "graph": label,
            "num_nodes": topology.num_switches,
            "old_seconds": old_seconds,
            "new_seconds": warm_seconds,
            "speedup": old_seconds / warm_seconds,
        },
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the fig11-scale sizes; prints only unless --output is given",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    cases = []
    cases.append(_round_loop_case(8, repeats=5))
    cases.extend(_end_to_end_case(8, repeats=3))
    if not args.quick:
        cases.append(_round_loop_case(10, repeats=5, repeats_old=2))
        cases.append(_round_loop_case(12, repeats=3, repeats_old=2))
        cases.extend(_end_to_end_case(10, repeats=3, repeats_old=2))


    # Every snapshot row carries the recorder's RSS high-water mark at the
    # time the row set completed (ru_maxrss is process-monotonic, so this is
    # an upper bound per row, not a per-case footprint).
    for case in cases:
        case["peak_rss_kb"] = peak_rss_kb()
    for case in cases:
        print(
            f"{case['kernel']:<24} {case['graph']:<52} "
            f"old {case['old_seconds'] * 1e3:9.3f} ms  "
            f"new {case['new_seconds'] * 1e3:9.3f} ms  "
            f"{case['speedup']:7.1f}x"
        )
    output = args.output
    if output is None:
        if args.quick:
            print("quick run: snapshot not written (pass --output to record one)")
            return 0
        output = OUTPUT
    snapshot = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
