"""Micro-benchmarks of the topology layer against the retained references.

``--benchmark-only`` runs these alongside the seed benchmarks; the
``record_topology.py`` script in this directory turns the same comparisons
into the committed ``BENCH_topology.json`` trajectory snapshot.
"""

import random

import pytest

from repro.graphs._reference import (
    sequential_random_regular_graph_reference,
    stub_matching_regular_graph_reference,
)
from repro.graphs.regular import (
    sequential_random_regular_graph,
    stub_matching_regular_graph,
)
from repro.topologies.ensemble import EnsembleSpec, generate_cores
from repro.topologies.jellyfish import JellyfishTopology

NUM_NODES = 300
DEGREE = 11


def test_bench_sequential_rrg_array_native(benchmark):
    graph = benchmark(
        sequential_random_regular_graph, NUM_NODES, DEGREE, random.Random(0)
    )
    assert graph.number_of_edges() == NUM_NODES * DEGREE // 2


def test_bench_sequential_rrg_reference(benchmark):
    graph = benchmark.pedantic(
        sequential_random_regular_graph_reference,
        args=(NUM_NODES, DEGREE),
        kwargs={"rng": random.Random(0)},
        iterations=1,
        rounds=2,
    )
    assert graph.number_of_edges() == NUM_NODES * DEGREE // 2


def test_bench_stub_matching_vectorized(benchmark):
    graph = benchmark(
        stub_matching_regular_graph, NUM_NODES, DEGREE, random.Random(0)
    )
    assert graph.number_of_edges() == NUM_NODES * DEGREE // 2


def test_bench_stub_matching_reference(benchmark):
    graph = benchmark.pedantic(
        stub_matching_regular_graph_reference,
        args=(NUM_NODES, DEGREE),
        kwargs={"rng": random.Random(0)},
        iterations=1,
        rounds=2,
    )
    assert graph.number_of_edges() == NUM_NODES * DEGREE // 2


@pytest.fixture(scope="module")
def expansion_base():
    return JellyfishTopology.build(NUM_NODES, DEGREE + 3, DEGREE, rng=1)


def test_bench_add_switch_incremental(benchmark, expansion_base):
    def run():
        topology = expansion_base.copy()
        topology.add_switch("new", DEGREE + 3, servers=1, rng=random.Random(2))
        return topology

    topology = benchmark(run)
    assert topology.num_switches == NUM_NODES + 1


def test_bench_add_switch_reference(benchmark, expansion_base):
    def run():
        topology = expansion_base.copy()
        topology._add_switch_reference(
            "new", DEGREE + 3, servers=1, rng=random.Random(2)
        )
        return topology

    topology = benchmark.pedantic(run, iterations=1, rounds=3)
    assert topology.num_switches == NUM_NODES + 1


def test_bench_ensemble_build_stubs(benchmark):
    spec = EnsembleSpec(
        num_instances=20,
        num_switches=120,
        ports_per_switch=14,
        network_degree=11,
        method="stubs",
        seed=0,
    )

    def build():
        return [core for _, core in generate_cores(spec)]

    cores = benchmark(build)
    assert len(cores) == 20
