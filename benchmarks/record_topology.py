"""Record the topology-layer perf trajectory: reference vs array-native.

Times the retained pre-refactor constructors (``repro.graphs._reference``,
``JellyfishTopology._add_switch_reference``) against the array-native
topology layer on fig05-scale inputs and writes
``benchmarks/BENCH_topology.json``.  Run it after touching anything under
``repro.graphs.regular``, ``repro.topologies.core`` or the ensemble
subsystem:

    PYTHONPATH=src python benchmarks/record_topology.py            # full sizes (~minutes)
    PYTHONPATH=src python benchmarks/record_topology.py --quick    # small sizes only

A ``--quick`` run prints the comparison but refuses to overwrite the
committed snapshot (pass ``--output`` explicitly to write one), so the
fig05-scale rows backing the recorded trajectory never vanish silently.

Cases:

* ``rrg_sequential_construction`` -- the paper's sequential RRG at fig05
  scale (3200 switches, r=36): historical per-edge networkx loop vs the
  seed-compatible array-native core.  The produced edge sets are asserted
  identical.
* ``rrg_stub_matching`` -- the vectorized stub-matching constructor vs its
  scalar reference at the same scale.
* ``degree_budget_construction`` -- the heterogeneous (from_equipment)
  construction at fig01 paper equipment scale.
* ``jellyfish_expand`` -- incremental expansion: quadratic per-splice
  candidate rebuild vs the rank-selectable candidate set.
* ``ensemble_build_100`` -- a 100-instance ensemble build: per-instance
  reference loops vs the array-native generator; a second row compares the
  sequential and stub-matching methods inside the new path.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

from repro.telemetry.manifest import peak_rss_kb
from repro.telemetry.timing import best_of

from repro.graphs._reference import (
    random_graph_with_degree_budget_reference,
    sequential_random_regular_graph_reference,
    stub_matching_regular_graph_reference,
)
from repro.graphs.regular import (
    random_graph_with_degree_budget,
    random_graph_with_degree_budget_rows,
    sequential_random_regular_graph,
    sequential_random_regular_rows,
    stub_matching_regular_graph,
    stub_matching_regular_rows,
)
from repro.topologies.ensemble import EnsembleSpec, generate_cores
from repro.topologies.jellyfish import JellyfishTopology

OUTPUT = Path(__file__).resolve().parent / "BENCH_topology.json"


def _best_of(callable_, repeats: int) -> float:
    """Shared-clock best-of timing (see :func:`repro.telemetry.timing.best_of`)."""
    return best_of(callable_, repeats)


def _assert_same_edges(fast, reference) -> None:
    if list(fast.edges) != list(reference.edges):
        raise RuntimeError("fast and reference constructions diverged")


def _sequential_case(num_nodes: int, degree: int, repeats: int, repeats_old: int) -> dict:
    """Reference nx.Graph build vs array-native rows build (same seed).

    Each side is timed to its evaluation-ready form: the historical path
    must finish with a live ``nx.Graph``; the array-native path feeds the
    CSR kernels from the rows directly and only materializes on demand.
    """
    _assert_same_edges(
        sequential_random_regular_graph(num_nodes, degree, random.Random(0)),
        sequential_random_regular_graph_reference(num_nodes, degree, random.Random(0)),
    )
    new_seconds = _best_of(
        lambda: sequential_random_regular_rows(num_nodes, degree, random.Random(0)),
        repeats,
    )
    old_seconds = _best_of(
        lambda: sequential_random_regular_graph_reference(
            num_nodes, degree, random.Random(0)
        ),
        repeats_old,
    )
    return {
        "kernel": "rrg_sequential_construction",
        "graph": f"RRG n={num_nodes} r={degree}",
        "num_nodes": num_nodes,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _stub_case(num_nodes: int, degree: int, repeats: int, repeats_old: int) -> dict:
    """Scalar stub-matching reference vs the vectorized kernel (same seed)."""
    _assert_same_edges(
        stub_matching_regular_graph(num_nodes, degree, random.Random(0)),
        stub_matching_regular_graph_reference(num_nodes, degree, random.Random(0)),
    )
    new_seconds = _best_of(
        lambda: stub_matching_regular_rows(num_nodes, degree, random.Random(0)),
        repeats,
    )
    old_seconds = _best_of(
        lambda: stub_matching_regular_graph_reference(
            num_nodes, degree, random.Random(0)
        ),
        repeats_old,
    )
    return {
        "kernel": "rrg_stub_matching",
        "graph": f"RRG n={num_nodes} r={degree}",
        "num_nodes": num_nodes,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _budget_case(num_switches: int, ports: int, num_servers: int, repeats: int, repeats_old: int) -> dict:
    base = num_servers // num_switches
    extra = num_servers % num_switches
    budgets = {
        node: min(ports - (base + (1 if node < extra else 0)), num_switches - 1)
        for node in range(num_switches)
    }
    _assert_same_edges(
        random_graph_with_degree_budget(budgets, random.Random(0)),
        random_graph_with_degree_budget_reference(budgets, random.Random(0)),
    )
    new_seconds = _best_of(
        lambda: random_graph_with_degree_budget_rows(budgets, random.Random(0)),
        repeats,
    )
    old_seconds = _best_of(
        lambda: random_graph_with_degree_budget_reference(budgets, random.Random(0)),
        repeats_old,
    )
    return {
        "kernel": "degree_budget_construction",
        "graph": f"equipment n={num_switches} k={ports} servers={num_servers}",
        "num_nodes": num_switches,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _expand_case(num_nodes: int, degree: int, new_switches: int, repeats: int, repeats_old: int) -> dict:
    ports = degree + 3

    def run_new():
        topology = JellyfishTopology.build(num_nodes, ports, degree, rng=1)
        rng = random.Random(2)
        for offset in range(new_switches):
            topology.add_switch(("new", offset), ports, servers=1, rng=rng, validate=False)
        topology.validate()
        return topology

    def run_old():
        topology = JellyfishTopology.build(num_nodes, ports, degree, rng=1)
        rng = random.Random(2)
        for offset in range(new_switches):
            topology._add_switch_reference(("new", offset), ports, servers=1, rng=rng)
        return topology

    fast, reference = run_new(), run_old()
    _assert_same_edges(fast.graph, reference.graph)
    new_seconds = _best_of(run_new, repeats)
    old_seconds = _best_of(run_old, repeats_old)
    # Subtract nothing: both timings include the identical base build, so the
    # reported speedup understates the pure splice-loop gain.
    return {
        "kernel": "jellyfish_expand",
        "graph": f"RRG n={num_nodes} r={degree} + {new_switches} switches",
        "num_nodes": num_nodes,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _ensemble_cases(num_instances: int, num_nodes: int, degree: int, ports: int, repeats: int) -> list:
    spec_sequential = EnsembleSpec(
        num_instances=num_instances,
        num_switches=num_nodes,
        ports_per_switch=ports,
        network_degree=degree,
        seed=0,
    )
    spec_stubs = EnsembleSpec(
        num_instances=num_instances,
        num_switches=num_nodes,
        ports_per_switch=ports,
        network_degree=degree,
        method="stubs",
        seed=0,
    )

    def build_reference():
        for instance_seed in spec_sequential.instance_seeds():
            sequential_random_regular_graph_reference(
                num_nodes, degree, random.Random(instance_seed)
            )

    def build_sequential():
        for _ in generate_cores(spec_sequential):
            pass

    def build_stubs():
        for _ in generate_cores(spec_stubs):
            pass

    old_seconds = _best_of(build_reference, 1)
    sequential_seconds = _best_of(build_sequential, repeats)
    stubs_seconds = _best_of(build_stubs, repeats)
    label = f"{num_instances} x RRG n={num_nodes} r={degree}"
    return [
        {
            "kernel": "ensemble_build_100_sequential",
            "graph": label + " (reference loop vs array-native sequential)",
            "num_nodes": num_nodes,
            "old_seconds": old_seconds,
            "new_seconds": sequential_seconds,
            "speedup": old_seconds / sequential_seconds,
        },
        {
            "kernel": "ensemble_build_100_stubs",
            "graph": label + " (array-native sequential vs vectorized stubs)",
            "num_nodes": num_nodes,
            "old_seconds": sequential_seconds,
            "new_seconds": stubs_seconds,
            "speedup": sequential_seconds / stubs_seconds,
        },
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the fig05-scale sizes; prints only unless --output is given",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    cases = []
    if args.quick:
        cases.append(_sequential_case(800, 36, repeats=3, repeats_old=1))
        cases.append(_stub_case(800, 36, repeats=3, repeats_old=2))
        cases.append(_budget_case(80, 8, 112, repeats=3, repeats_old=2))
        cases.append(_expand_case(200, 11, 8, repeats=3, repeats_old=2))
        cases.extend(_ensemble_cases(30, 120, 11, 14, repeats=2))
    else:
        cases.append(_sequential_case(3200, 36, repeats=2, repeats_old=1))
        cases.append(_stub_case(3200, 36, repeats=3, repeats_old=2))
        cases.append(_budget_case(245, 14, 686, repeats=3, repeats_old=2))
        cases.append(_expand_case(800, 36, 8, repeats=2, repeats_old=1))
        cases.extend(_ensemble_cases(100, 260, 11, 14, repeats=2))


    # Every snapshot row carries the recorder's RSS high-water mark at the
    # time the row set completed (ru_maxrss is process-monotonic, so this is
    # an upper bound per row, not a per-case footprint).
    for case in cases:
        case["peak_rss_kb"] = peak_rss_kb()
    for case in cases:
        print(
            f"{case['kernel']:<32} {case['graph']:<56} "
            f"old {case['old_seconds'] * 1e3:10.3f} ms  "
            f"new {case['new_seconds'] * 1e3:10.3f} ms  "
            f"{case['speedup']:7.1f}x"
        )
    output = args.output
    if output is None:
        if args.quick:
            print("quick run: snapshot not written (pass --output to record one)")
            return 0
        output = OUTPUT
    snapshot = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
