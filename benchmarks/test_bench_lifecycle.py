"""Benchmarks and acceptance guard for the lifecycle metric backends.

The pytest-benchmark rows time a 200-event scenario through both backends
(after asserting trajectory parity); the snapshot guard pins the committed
``BENCH_lifecycle.json`` acceptance row at >= 5x, so a regression in the
incremental maintenance path cannot land silently --
``record_lifecycle.py`` refuses to write a snapshot below the floor, and
this test refuses a snapshot that was never re-recorded.
"""

import json
from pathlib import Path

import pytest

from repro.graphs.csr import clear_csr_cache
from repro.lifecycle import LifecycleConfig, run_lifecycle
from repro.routing.paths import clear_shared_path_sets
from repro.simulation.capacity import clear_capacity_cache
from repro.topologies.jellyfish import JellyfishTopology

SNAPSHOT = Path(__file__).resolve().parent / "BENCH_lifecycle.json"

QUICK_CONFIG = LifecycleConfig(
    duration_hours=650.0,
    link_failure_rate=0.45,
    switch_failure_rate=0.045,
    link_mttr_hours=1.0,
    switch_mttr_hours=2.0,
    epoch_interval_hours=130.0,
    max_events=200,
    routing="ecmp",
    k=4,
    congestion_control="tcp1",
    traffic="fixed",
)


def _clear_shared_state():
    clear_csr_cache()
    clear_shared_path_sets()
    clear_capacity_cache()


@pytest.fixture(scope="module")
def quick_plant():
    plant = JellyfishTopology.build(64, 12, 9, rng=5)
    reference = run_lifecycle(plant, QUICK_CONFIG, seed=5, backend="reference")
    incremental = run_lifecycle(plant, QUICK_CONFIG, seed=5, backend="incremental")
    assert reference.event_log == incremental.event_log
    assert reference.epochs == incremental.epochs
    return plant


def test_bench_lifecycle_incremental(benchmark, quick_plant):
    _clear_shared_state()
    result = benchmark(
        run_lifecycle, quick_plant, QUICK_CONFIG, seed=5, backend="incremental"
    )
    assert result.events_applied == 200


def test_bench_lifecycle_reference(benchmark, quick_plant):
    _clear_shared_state()
    result = benchmark.pedantic(
        run_lifecycle,
        args=(quick_plant, QUICK_CONFIG),
        kwargs={"seed": 5, "backend": "reference"},
        iterations=1,
        rounds=2,
    )
    assert result.events_applied == 200


def test_lifecycle_snapshot_pins_speedup():
    snapshot = json.loads(SNAPSHOT.read_text())
    rows = {case["kernel"]: case for case in snapshot["cases"]}
    acceptance = rows["lifecycle_1000_events"]
    assert acceptance["speedup"] >= 5.0
    assert acceptance["graph"].startswith("jellyfish N=128 (1000 events")
