"""Benchmark the scenario engine: parallel sharding and cache-hit speedup.

Two properties of the engine are measured on real workloads (Jellyfish
construction + path-LP throughput, the per-point work behind Figs 2(c)/3/8):

1. **Sharding** -- the same grid executed serially and with
   ``SweepRunner(workers=4)``.  The speedup is reported (it depends on the
   machine's core count and is pure overhead on a single-core box), and the
   results must be identical either way; wall-clock is deliberately not
   asserted so a noisy CI runner cannot fail the suite on a timing fluke.
2. **Caching** -- a cold run against an empty cache versus a warm re-run of
   the same sweep, which must serve every point from disk and be much
   faster than re-solving the LPs.
"""

import multiprocessing
import time

from repro.engine import ResultCache, ScenarioSpec, SweepRunner, expand, run_sweep
from repro.experiments.common import run_experiment

THROUGHPUT_GRID = ScenarioSpec.grid(
    "repro.engine.benchtargets:jellyfish_throughput_point",
    seed=0,
    seed_strategy="derived",
    repetitions=2,
    num_switches=[32, 40, 48],
    ports=6,
    network_degree=4,
)


def _timed(fn, *args):
    start = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - start


def test_bench_parallel_vs_serial_sweep(benchmark):
    points = expand([THROUGHPUT_GRID])
    serial_values, serial_time = _timed(SweepRunner(workers=0).run_values, points)

    timing = {}

    def parallel_run():
        values, timing["parallel"] = _timed(SweepRunner(workers=4).run_values, points)
        return values

    parallel_values = benchmark.pedantic(parallel_run, iterations=1, rounds=1)
    assert parallel_values == serial_values

    parallel_time = timing["parallel"]
    print()
    print(
        f"engine sweep over {len(points)} points: serial {serial_time:.2f}s, "
        f"workers=4 {parallel_time:.2f}s "
        f"(speedup x{serial_time / max(parallel_time, 1e-9):.2f}, "
        f"{multiprocessing.cpu_count()} cpu(s))"
    )


def test_bench_cache_hit_speedup(benchmark, tmp_path):
    points = expand([THROUGHPUT_GRID])

    cold_cache = ResultCache(tmp_path)
    cold_values, cold_time = _timed(SweepRunner(cache=cold_cache).run_values, points)
    assert cold_cache.stats.writes == len(points)

    warm_cache = ResultCache(tmp_path)
    timing = {}

    def warm_run():
        values, timing["warm"] = _timed(SweepRunner(cache=warm_cache).run_values, points)
        return values

    warm_values = benchmark.pedantic(warm_run, iterations=1, rounds=1)
    warm_time = timing["warm"]
    assert warm_values == cold_values
    assert warm_cache.stats.hits == len(points), "warm run must be 100% cache hits"
    assert warm_time < cold_time, "cache hits must beat re-solving the LPs"

    print()
    print(
        f"cache: cold {cold_time * 1000:.0f}ms, warm {warm_time * 1000:.0f}ms "
        f"(speedup x{cold_time / max(warm_time, 1e-9):.1f})"
    )


def test_bench_registered_sweep_with_cache(benchmark, tmp_path):
    """`repro sweep run fig02a` end-to-end: cold then fully-cached re-run."""
    cold = run_sweep("fig02a", runner=SweepRunner(cache=ResultCache(tmp_path)))
    warm_cache = ResultCache(tmp_path)
    warm = benchmark.pedantic(
        run_sweep,
        args=("fig02a",),
        kwargs={"runner": SweepRunner(cache=warm_cache)},
        iterations=1,
        rounds=1,
    )
    assert warm.rows == cold.rows
    assert warm.rows == run_experiment("fig02a").rows
    assert warm_cache.stats.misses == 0


def _baseline_execute(indexed):
    """The seed's unsupervised pool body: execute one (index, point) pair."""
    index, point = indexed
    return index, point.execute()


def _baseline_imap_unordered(points, workers):
    """The pre-supervisor execution loop: bare pool.imap_unordered."""
    values = [None] * len(points)
    with multiprocessing.Pool(processes=workers) as pool:
        for index, value in pool.imap_unordered(
            _baseline_execute, list(enumerate(points))
        ):
            values[index] = value
    return values


def test_bench_supervisor_overhead(benchmark):
    """Fault-free supervised execution must stay within 3% of the bare pool.

    The supervisor adds per-point pipe round-trips, deadline bookkeeping and
    sentinel waits; on a healthy sweep all of that must be noise against the
    LP solves.  Best-of-3 on both sides squeezes out scheduler flukes, and a
    small absolute epsilon keeps a sub-second grid from failing on a
    microsecond-level wobble.
    """
    points = expand([THROUGHPUT_GRID])
    workers = 2

    baseline_values, baseline_time = None, float("inf")
    for _ in range(3):
        values, elapsed = _timed(_baseline_imap_unordered, points, workers)
        baseline_values = values
        baseline_time = min(baseline_time, elapsed)

    timing = {"supervised": float("inf")}

    def supervised_run():
        runner = SweepRunner(workers=workers, timeout_s=600.0)
        values, elapsed = _timed(runner.run_values, points)
        timing["supervised"] = min(timing["supervised"], elapsed)
        assert runner.fault_stats.quarantined == 0
        return values

    supervised_values = benchmark.pedantic(supervised_run, iterations=1, rounds=3)
    supervised_time = timing["supervised"]

    assert supervised_values == baseline_values
    overhead = supervised_time / max(baseline_time, 1e-9) - 1.0
    print()
    print(
        f"supervisor overhead: baseline {baseline_time:.3f}s, "
        f"supervised {supervised_time:.3f}s ({overhead:+.1%})"
    )
    assert supervised_time <= baseline_time * 1.03 + 0.05, (
        f"supervised runner {supervised_time:.3f}s exceeds 3% overhead over "
        f"bare imap_unordered {baseline_time:.3f}s"
    )
