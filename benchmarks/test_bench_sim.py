"""Micro-benchmarks of the AIMD dynamics engine against the scalar reference.

``--benchmark-only`` runs these alongside the seed benchmarks; the
``record_sim.py`` script in this directory turns the same comparison into
the committed ``BENCH_sim.json`` trajectory snapshot.
"""

import pytest

from repro.routing.paths import build_path_set
from repro.simulation._reference import simulate_aimd_reference
from repro.simulation.aimd import AimdConfig, simulate_aimd
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic


@pytest.fixture(scope="module")
def fig11_scale_problem():
    """Equipment-matched Jellyfish, permutation traffic, MPTCP x 8 subflows."""
    fattree = FatTreeTopology.build(8)
    topology = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=8,
        num_servers=int(round(fattree.num_servers * 1.25)),
        rng=1,
    )
    traffic = random_permutation_traffic(topology, rng=2)
    path_set = build_path_set(
        topology.graph, list(traffic.switch_pairs()), scheme="ksp", k=8
    )
    config = AimdConfig(
        routing="ksp", k=8, congestion_control="mptcp", rounds=200, warmup_rounds=50
    )
    return topology, traffic, config, path_set


def test_bench_aimd_vectorized(benchmark, fig11_scale_problem):
    topology, traffic, config, path_set = fig11_scale_problem
    result = benchmark(
        simulate_aimd, topology, traffic, config, rng=5, path_set=path_set
    )
    assert result.flow_throughputs


def test_bench_aimd_reference(benchmark, fig11_scale_problem):
    topology, traffic, config, path_set = fig11_scale_problem
    result = benchmark.pedantic(
        simulate_aimd_reference,
        args=(topology, traffic, config),
        kwargs={"rng": 5, "path_set": path_set},
        iterations=1,
        rounds=2,
    )
    assert result.flow_throughputs
