"""Benchmark regenerating Fig 5 of the paper: path length vs network size, from scratch vs expanded.

Runs the experiment at the fast ("small") scale and prints the reproduced
rows, so `pytest benchmarks/ --benchmark-only` doubles as the harness that
regenerates every table and figure.
"""

from repro.experiments.common import format_table, run_experiment


def test_bench_fig05(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig05",), kwargs={"scale": "small", "seed": 0},
        iterations=1, rounds=1,
    )
    assert result.rows
    print()
    print(format_table(result))
