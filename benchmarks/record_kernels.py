"""Record the kernel perf trajectory: old implementations vs CSR kernels.

Times the pre-CSR pure-Python implementations (kept in
``repro.routing._reference``) against the CSR kernels on representative
graph sizes and writes ``benchmarks/BENCH_kernels.json``.  Run it after
touching anything under ``repro.graphs.csr`` or the routing hot paths:

    PYTHONPATH=src python benchmarks/record_kernels.py            # all sizes (~minutes)
    PYTHONPATH=src python benchmarks/record_kernels.py --quick    # skip fig05 paper sizes

A ``--quick`` run prints the comparison but refuses to overwrite the
committed snapshot (pass ``--output`` explicitly to write one), so the
paper-scale rows backing the recorded trajectory never vanish silently.

The Yen rows report both a cold query (result cache cleared each call, i.e.
pure kernel speed) and a warm query (repeated on an unchanged graph, the
regime experiment sweeps actually run in: table1 re-queries pairs across
congestion-control configs and fig09 across routing schemes).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.telemetry.manifest import peak_rss_kb
from repro.telemetry.timing import best_of

from repro.graphs.csr import batched_hop_distances, clear_csr_cache, csr_graph
from repro.routing._reference import (
    all_pairs_hop_distances_reference,
    k_shortest_paths_reference,
)
from repro.routing.ksp import k_shortest_paths
from repro.topologies.jellyfish import JellyfishTopology

OUTPUT = Path(__file__).resolve().parent / "BENCH_kernels.json"


def _best_of(callable_, repeats: int) -> float:
    """Shared-clock best-of timing (see :func:`repro.telemetry.timing.best_of`)."""
    return best_of(callable_, repeats)


def _bfs_case(
    num_switches: int, ports: int, degree: int, repeats: int, repeats_old: int = None
) -> dict:
    topology = JellyfishTopology.build(num_switches, ports, degree, rng=0)
    graph = topology.graph
    clear_csr_cache()
    csr_graph(graph)  # build once: steady-state sweeps reuse the CSR view
    new_seconds = _best_of(lambda: batched_hop_distances(graph), repeats)
    old_seconds = _best_of(
        lambda: all_pairs_hop_distances_reference(graph),
        repeats if repeats_old is None else repeats_old,
    )
    return {
        "kernel": "all_pairs_hop_distances",
        "graph": f"jellyfish n={num_switches} r={degree}",
        "num_nodes": num_switches,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
    }


def _yen_case(num_switches: int, ports: int, degree: int, repeats: int) -> list:
    topology = JellyfishTopology.build(num_switches, ports, degree, rng=2)
    graph = topology.graph
    nodes = sorted(graph.nodes)
    source, target = nodes[0], nodes[-1]
    old_seconds = _best_of(
        lambda: k_shortest_paths_reference(graph, source, target, 8), repeats
    )
    clear_csr_cache()
    csr = csr_graph(graph)

    def cold():
        csr.result_cache.clear()
        k_shortest_paths(graph, source, target, 8)

    cold_seconds = _best_of(cold, repeats)
    k_shortest_paths(graph, source, target, 8)
    warm_seconds = _best_of(lambda: k_shortest_paths(graph, source, target, 8), repeats)
    label = f"jellyfish n={num_switches} r={degree}"
    return [
        {
            "kernel": "yen_k_shortest_paths_cold",
            "graph": label,
            "num_nodes": num_switches,
            "old_seconds": old_seconds,
            "new_seconds": cold_seconds,
            "speedup": old_seconds / cold_seconds,
        },
        {
            "kernel": "yen_k_shortest_paths_warm",
            "graph": label,
            "num_nodes": num_switches,
            "old_seconds": old_seconds,
            "new_seconds": warm_seconds,
            "speedup": old_seconds / warm_seconds,
        },
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip fig05 paper-scale graphs; prints only unless --output is given",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    cases = []
    cases.append(_bfs_case(100, 48, 36, repeats=5))
    cases.append(_bfs_case(400, 48, 36, repeats=3))
    cases.append(_bfs_case(800, 48, 36, repeats=3))
    if not args.quick:
        cases.append(_bfs_case(1600, 48, 36, repeats=3, repeats_old=2))
        cases.append(_bfs_case(3200, 48, 36, repeats=3, repeats_old=2))
    cases.extend(_yen_case(100, 10, 6, repeats=50))
    cases.extend(_yen_case(400, 24, 12, repeats=20))


    # Every snapshot row carries the recorder's RSS high-water mark at the
    # time the row set completed (ru_maxrss is process-monotonic, so this is
    # an upper bound per row, not a per-case footprint).
    for case in cases:
        case["peak_rss_kb"] = peak_rss_kb()
    for case in cases:
        print(
            f"{case['kernel']:<28} {case['graph']:<24} "
            f"old {case['old_seconds'] * 1e3:9.3f} ms  "
            f"new {case['new_seconds'] * 1e3:9.3f} ms  "
            f"{case['speedup']:7.1f}x"
        )
    output = args.output
    if output is None:
        if args.quick:
            print("quick run: snapshot not written (pass --output to record one)")
            return 0
        output = OUTPUT
    snapshot = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
